//! The differential driver: run every applicable oracle on a scenario,
//! compare verdicts, and check the invariant monitors stayed clean.
//!
//! Comparison rules:
//!
//! * [`Verdict::Unsupported`] answers are skipped; everything else is
//!   compared, so a lone crash ([`Verdict::Failed`]) shows up as a
//!   mismatch against the engines that answered.
//! * Instances rejected by [`pmcf_core::validate_instance`] with an
//!   overflow must be rejected by *every* IPM engine; the combinatorial
//!   baselines are not run on them (their unchecked arithmetic is
//!   exactly what the validation protects).
//! * [`Verdict::Rejected`] compares equal regardless of message — what
//!   must agree is *that* the instance is rejected, not the prose.
//! * During IPM runs a flight recorder is installed and the
//!   `pmcf-obs` invariant monitors are evaluated over the recording; a
//!   monitor failure fails the scenario even when all answers agree.

use crate::families::Scenario;
use pmcf_baselines::oracle::{BellmanFord, Bfs, Dinic, HopcroftKarp, Oracle, Ssp, Verdict};
use pmcf_core::oracle::IpmOracle;
use pmcf_core::{validate_instance, McfError};
use pmcf_obs::monitor::{run_monitors, Verdict as MonitorVerdict};
use pmcf_obs::recorder::{install, uninstall, FlightRecorder};

/// One oracle's answer to the scenario.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The oracle's stable name.
    pub oracle: &'static str,
    /// Its verdict.
    pub verdict: Verdict,
}

/// The result of one differential run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Every oracle's answer (including `Unsupported` ones, for the log).
    pub outcomes: Vec<Outcome>,
    /// Human-readable description of the disagreement, if any.
    pub mismatch: Option<String>,
    /// Invariant monitors that failed during the IPM runs.
    pub monitor_failures: Vec<String>,
}

impl Report {
    /// Whether the scenario passed: all comparable verdicts agree and
    /// every monitor stayed clean.
    pub fn clean(&self) -> bool {
        self.mismatch.is_none() && self.monitor_failures.is_empty()
    }

    /// One-line summary of every oracle's verdict.
    pub fn verdict_summary(&self) -> String {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.comparable())
            .map(|o| format!("{}={}", o.oracle, short(&o.verdict)))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn short(v: &Verdict) -> String {
    match v {
        Verdict::Value(x) => format!("value({x})"),
        Verdict::Distances(d) => format!("distances[{}]", d.len()),
        Verdict::Mask(m) => format!("mask({}/{})", m.iter().filter(|&&r| r).count(), m.len()),
        Verdict::Infeasible => "infeasible".into(),
        Verdict::NegativeCycle => "negative-cycle".into(),
        Verdict::Rejected(_) => "rejected".into(),
        Verdict::Unsupported => "unsupported".into(),
        Verdict::Failed(e) => format!("FAILED({e})"),
    }
}

/// Whether two comparable verdicts agree (rejections agree regardless of
/// their message; failures never agree with anything).
fn agree(a: &Verdict, b: &Verdict) -> bool {
    match (a, b) {
        (Verdict::Rejected(_), Verdict::Rejected(_)) => true,
        (Verdict::Failed(_), _) | (_, Verdict::Failed(_)) => false,
        _ => a == b,
    }
}

/// Run an oracle call under a fresh flight recorder and evaluate the
/// invariant monitors over whatever the solver emitted. Restores any
/// previously installed recorder afterwards.
fn monitored<T>(f: impl FnOnce() -> T) -> (T, Vec<MonitorVerdict>) {
    let prev = install(FlightRecorder::new(16_384));
    let out = f();
    let rec = uninstall();
    if let Some(p) = prev {
        install(p);
    }
    let verdicts = match rec {
        Some(rec) => run_monitors(&rec.snapshot()),
        None => Vec::new(),
    };
    (out, verdicts)
}

/// Run all applicable oracles on the scenario and compare.
pub fn run_scenario(sc: &Scenario) -> Report {
    let mut report = Report::default();
    let reference = IpmOracle::reference();
    let robust = IpmOracle::robust();

    // the magnitude pre-screen: instances the API boundary rejects for
    // overflow never reach the baselines (whose unchecked arithmetic
    // would wrap) — but both IPM engines must reject them unanimously
    if let Scenario::Mcf(p) = sc {
        if let Err(e @ McfError::Overflow { .. }) = validate_instance(p) {
            for o in [&reference as &dyn Oracle, &robust] {
                let v = o.mcf(p);
                report.outcomes.push(Outcome {
                    oracle: o.name(),
                    verdict: v,
                });
            }
            if !report
                .outcomes
                .iter()
                .all(|o| matches!(o.verdict, Verdict::Rejected(_)))
            {
                report.mismatch = Some(format!(
                    "validation rejects ({e}) but not every engine does: {}",
                    report.verdict_summary()
                ));
            }
            return report;
        }
    }

    let ipms: [&dyn Oracle; 2] = [&reference, &robust];
    let baselines: [&dyn Oracle; 5] = [&Ssp, &Dinic, &HopcroftKarp, &BellmanFord, &Bfs];

    let mut monitor_failures = Vec::new();
    let mut ask = |o: &dyn Oracle, monitored_run: bool| -> Verdict {
        let call = || match sc {
            Scenario::Mcf(p) => o.mcf(p),
            Scenario::MaxFlow { g, cap, s, t } => o.max_flow(g, cap, *s, *t),
            Scenario::Matching { g, nl } => o.matching(g, *nl),
            Scenario::Sssp { g, w, s } => o.sssp(g, w, *s),
            Scenario::Reach { g, s } => o.reachability(g, *s),
        };
        if monitored_run {
            let (v, verdicts) = monitored(call);
            for mv in verdicts.iter().filter(|mv| !mv.ok) {
                monitor_failures.push(format!("{}: {} ({})", o.name(), mv.monitor, mv.detail));
            }
            v
        } else {
            call()
        }
    };

    for o in ipms {
        let v = ask(o, true);
        report.outcomes.push(Outcome {
            oracle: o.name(),
            verdict: v,
        });
    }
    for o in baselines {
        let v = ask(o, false);
        report.outcomes.push(Outcome {
            oracle: o.name(),
            verdict: v,
        });
    }
    report.monitor_failures = monitor_failures;

    let comparable: Vec<&Outcome> = report
        .outcomes
        .iter()
        .filter(|o| o.verdict.comparable())
        .collect();
    if let Some(first) = comparable.first() {
        for other in &comparable[1..] {
            if !agree(&first.verdict, &other.verdict) {
                report.mismatch = Some(format!(
                    "{} disagrees with {}: {}",
                    other.oracle,
                    first.oracle,
                    report.verdict_summary()
                ));
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcf_graph::{generators, DiGraph, McfProblem};

    #[test]
    fn feasible_instance_is_clean_across_all_oracles() {
        let p = generators::random_mcf(6, 16, 3, 3, 11);
        let r = run_scenario(&Scenario::Mcf(p));
        assert!(r.clean(), "{:?}", r);
        // both IPMs and SSP answered with the same value
        assert!(
            r.outcomes
                .iter()
                .filter(|o| matches!(o.verdict, Verdict::Value(_)))
                .count()
                >= 3
        );
    }

    #[test]
    fn overflow_instance_short_circuits_to_unanimous_rejection() {
        let g = DiGraph::from_edges(2, vec![(0, 1)]);
        let p = McfProblem::new(g, vec![1], vec![1i64 << 61], vec![-1, 1]);
        let r = run_scenario(&Scenario::Mcf(p));
        assert!(r.clean(), "{:?}", r);
        assert_eq!(r.outcomes.len(), 2, "baselines must not run on overflow");
        assert!(r
            .outcomes
            .iter()
            .all(|o| matches!(o.verdict, Verdict::Rejected(_))));
    }

    #[test]
    fn infeasible_instance_is_unanimous() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (2, 3)]);
        let p = McfProblem::new(g, vec![2, 2], vec![1, 1], vec![-1, 0, 0, 1]);
        let r = run_scenario(&Scenario::Mcf(p));
        assert!(r.clean(), "{:?}", r);
        assert!(r
            .outcomes
            .iter()
            .filter(|o| o.verdict.comparable())
            .all(|o| o.verdict == Verdict::Infeasible));
    }

    #[test]
    fn rejections_agree_across_different_messages() {
        assert!(agree(
            &Verdict::Rejected("a".into()),
            &Verdict::Rejected("b".into())
        ));
        assert!(!agree(&Verdict::Failed("x".into()), &Verdict::Value(3)));
        assert!(!agree(&Verdict::Value(3), &Verdict::Value(4)));
    }
}
