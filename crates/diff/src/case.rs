//! Replayable case files: `pmcf.case/v1`.
//!
//! A case file captures one (usually shrunken) scenario that once made
//! the oracles disagree, plus enough metadata to understand why it was
//! interesting. Checked-in cases under `results/cases/` are replayed by
//! `cargo test` and by the CI fuzz-smoke leg, so a fixed bug stays
//! fixed.
//!
//! Format notes: scalars that index vertices (`n`, `s`, `t`, `nl`) and
//! the seed are plain JSON numbers; every `i64` payload (capacities,
//! costs, demands, weights) is a JSON *string*, because the overflow
//! boundary cases carry values near `2^62` that a float-backed JSON
//! number cannot round-trip exactly.

use crate::families::{DeltaSpec, Scenario};
use pmcf_graph::{DiGraph, McfProblem};
use pmcf_obs::json::{parse, JsonValue};
use std::path::Path;

/// The schema tag every case file starts with.
pub const SCHEMA: &str = "pmcf.case/v1";

/// A replayable differential-test case.
#[derive(Clone, Debug)]
pub struct CaseFile {
    /// Which family produced the original instance.
    pub family: String,
    /// The seed it was produced from.
    pub seed: u64,
    /// Why this case exists (the mismatch message at capture time).
    pub reason: String,
    /// The (shrunken) scenario to replay.
    pub scenario: Scenario,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn i64s(xs: &[i64]) -> String {
    let inner: Vec<String> = xs.iter().map(|x| format!("\"{x}\"")).collect();
    format!("[{}]", inner.join(","))
}

fn edges_json(g: &DiGraph) -> String {
    let inner: Vec<String> = g
        .edges()
        .iter()
        .map(|&(u, v)| format!("[{u},{v}]"))
        .collect();
    format!("[{}]", inner.join(","))
}

impl CaseFile {
    /// Serialize as a single pretty-enough JSON object.
    pub fn to_json(&self) -> String {
        let scenario = match &self.scenario {
            Scenario::Mcf(p) => format!(
                "{{\"n\":{},\"edges\":{},\"cap\":{},\"cost\":{},\"demand\":{}}}",
                p.n(),
                edges_json(&p.graph),
                i64s(&p.cap),
                i64s(&p.cost),
                i64s(&p.demand)
            ),
            Scenario::ResolveChurn { base, deltas } => {
                let ds: Vec<String> = deltas
                    .iter()
                    .map(|d| {
                        let ins: Vec<String> = d
                            .insert
                            .iter()
                            .map(|&(f, t, u, c)| format!("[{f},{t},\"{u}\",\"{c}\"]"))
                            .collect();
                        let del: Vec<String> = d.delete.iter().map(|e| e.to_string()).collect();
                        let sc: Vec<String> = d
                            .set_cost
                            .iter()
                            .map(|&(e, c)| format!("[{e},\"{c}\"]"))
                            .collect();
                        let su: Vec<String> = d
                            .set_cap
                            .iter()
                            .map(|&(e, u)| format!("[{e},\"{u}\"]"))
                            .collect();
                        format!(
                            "{{\"insert\":[{}],\"delete\":[{}],\"set_cost\":[{}],\"set_cap\":[{}]}}",
                            ins.join(","),
                            del.join(","),
                            sc.join(","),
                            su.join(",")
                        )
                    })
                    .collect();
                format!(
                    "{{\"n\":{},\"edges\":{},\"cap\":{},\"cost\":{},\"demand\":{},\"deltas\":[{}]}}",
                    base.n(),
                    edges_json(&base.graph),
                    i64s(&base.cap),
                    i64s(&base.cost),
                    i64s(&base.demand),
                    ds.join(",")
                )
            }
            Scenario::MaxFlow { g, cap, s, t } => format!(
                "{{\"n\":{},\"edges\":{},\"cap\":{},\"s\":{s},\"t\":{t}}}",
                g.n(),
                edges_json(g),
                i64s(cap)
            ),
            Scenario::Matching { g, nl } => format!(
                "{{\"n\":{},\"edges\":{},\"nl\":{nl}}}",
                g.n(),
                edges_json(g)
            ),
            Scenario::Sssp { g, w, s } => format!(
                "{{\"n\":{},\"edges\":{},\"w\":{},\"s\":{s}}}",
                g.n(),
                edges_json(g),
                i64s(w)
            ),
            Scenario::Reach { g, s } => {
                format!("{{\"n\":{},\"edges\":{},\"s\":{s}}}", g.n(), edges_json(g))
            }
        };
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"family\": \"{}\",\n  \"seed\": {},\n  \"task\": \"{}\",\n  \"reason\": \"{}\",\n  \"scenario\": {}\n}}\n",
            SCHEMA,
            esc(&self.family),
            self.seed,
            self.scenario.task(),
            esc(&self.reason),
            scenario
        )
    }

    /// Parse a case file.
    pub fn from_json(src: &str) -> Result<CaseFile, String> {
        let v = parse(src)?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (want {SCHEMA})"));
        }
        let family = v
            .get("family")
            .and_then(|s| s.as_str())
            .ok_or("missing family")?
            .to_string();
        let seed = v
            .get("seed")
            .and_then(|s| s.as_f64())
            .ok_or("missing seed")? as u64;
        let reason = v
            .get("reason")
            .and_then(|s| s.as_str())
            .unwrap_or("")
            .to_string();
        let task = v
            .get("task")
            .and_then(|s| s.as_str())
            .ok_or("missing task")?;
        let sc = v.get("scenario").ok_or("missing scenario")?;
        let scenario = parse_scenario(task, sc)?;
        Ok(CaseFile {
            family,
            seed,
            reason,
            scenario,
        })
    }

    /// Write to `path` (creating parent directories).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Load from `path`.
    pub fn load(path: &Path) -> Result<CaseFile, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        CaseFile::from_json(&src).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .map(|f| f as usize)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn get_i64s(v: &JsonValue, key: &str) -> Result<Vec<i64>, String> {
    let arr = v
        .get(key)
        .and_then(|x| x.as_arr())
        .ok_or_else(|| format!("missing array field {key:?}"))?;
    arr.iter()
        .map(|x| {
            x.as_str()
                .ok_or_else(|| format!("{key:?} entries must be strings"))?
                .parse::<i64>()
                .map_err(|e| format!("{key:?} entry: {e}"))
        })
        .collect()
}

fn get_graph(v: &JsonValue) -> Result<DiGraph, String> {
    let n = get_usize(v, "n")?;
    let arr = v
        .get("edges")
        .and_then(|x| x.as_arr())
        .ok_or("missing edges array")?;
    let mut edges = Vec::with_capacity(arr.len());
    for e in arr {
        let pair = e.as_arr().ok_or("edge must be a [u, v] pair")?;
        if pair.len() != 2 {
            return Err("edge must be a [u, v] pair".into());
        }
        let u = pair[0].as_f64().ok_or("edge endpoint must be a number")? as usize;
        let w = pair[1].as_f64().ok_or("edge endpoint must be a number")? as usize;
        if u >= n || w >= n {
            return Err(format!("edge ({u}, {w}) out of range for n = {n}"));
        }
        edges.push((u, w));
    }
    Ok(DiGraph::from_edges(n, edges))
}

fn num(v: &JsonValue, what: &str) -> Result<usize, String> {
    v.as_f64()
        .map(|f| f as usize)
        .ok_or_else(|| format!("{what} must be a number"))
}

fn strnum(v: &JsonValue, what: &str) -> Result<i64, String> {
    v.as_str()
        .ok_or_else(|| format!("{what} must be an i64 string"))?
        .parse::<i64>()
        .map_err(|e| format!("{what}: {e}"))
}

fn parse_delta(v: &JsonValue) -> Result<DeltaSpec, String> {
    let arr_of = |key: &str| -> Result<&[JsonValue], String> {
        v.get(key)
            .and_then(|x| x.as_arr())
            .ok_or_else(|| format!("delta missing array field {key:?}"))
    };
    let mut d = DeltaSpec::default();
    for ins in arr_of("insert")? {
        let row = ins.as_arr().ok_or("insert entry must be an array")?;
        if row.len() != 4 {
            return Err("insert entry must be [from, to, cap, cost]".into());
        }
        d.insert.push((
            num(&row[0], "insert.from")?,
            num(&row[1], "insert.to")?,
            strnum(&row[2], "insert.cap")?,
            strnum(&row[3], "insert.cost")?,
        ));
    }
    for del in arr_of("delete")? {
        d.delete.push(num(del, "delete entry")?);
    }
    for (key, out) in [("set_cost", &mut d.set_cost), ("set_cap", &mut d.set_cap)] {
        for entry in arr_of(key)? {
            let row = entry.as_arr().ok_or("set entry must be an array")?;
            if row.len() != 2 {
                return Err(format!("{key} entry must be [edge, value]"));
            }
            out.push((num(&row[0], "set edge")?, strnum(&row[1], "set value")?));
        }
    }
    Ok(d)
}

fn parse_scenario(task: &str, v: &JsonValue) -> Result<Scenario, String> {
    let g = get_graph(v)?;
    match task {
        "mcf" => {
            let cap = get_i64s(v, "cap")?;
            let cost = get_i64s(v, "cost")?;
            let demand = get_i64s(v, "demand")?;
            if cap.len() != g.m() || cost.len() != g.m() || demand.len() != g.n() {
                return Err("cap/cost/demand lengths do not match the graph".into());
            }
            if demand.iter().sum::<i64>() != 0 {
                return Err("demands must sum to zero".into());
            }
            if cap.iter().any(|&u| u < 0) {
                return Err("capacities must be ≥ 0".into());
            }
            Ok(Scenario::Mcf(McfProblem::new(g, cap, cost, demand)))
        }
        "resolve_churn" => {
            let cap = get_i64s(v, "cap")?;
            let cost = get_i64s(v, "cost")?;
            let demand = get_i64s(v, "demand")?;
            if cap.len() != g.m() || cost.len() != g.m() || demand.len() != g.n() {
                return Err("cap/cost/demand lengths do not match the graph".into());
            }
            if demand.iter().sum::<i64>() != 0 {
                return Err("demands must sum to zero".into());
            }
            let deltas = v
                .get("deltas")
                .and_then(|x| x.as_arr())
                .ok_or("missing deltas array")?
                .iter()
                .map(parse_delta)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Scenario::ResolveChurn {
                base: McfProblem::new(g, cap, cost, demand),
                deltas,
            })
        }
        "max_flow" => {
            let cap = get_i64s(v, "cap")?;
            if cap.len() != g.m() {
                return Err("cap length does not match the graph".into());
            }
            Ok(Scenario::MaxFlow {
                cap,
                s: get_usize(v, "s")?,
                t: get_usize(v, "t")?,
                g,
            })
        }
        "matching" => Ok(Scenario::Matching {
            nl: get_usize(v, "nl")?,
            g,
        }),
        "sssp" => {
            let w = get_i64s(v, "w")?;
            if w.len() != g.m() {
                return Err("w length does not match the graph".into());
            }
            Ok(Scenario::Sssp {
                w,
                s: get_usize(v, "s")?,
                g,
            })
        }
        "reachability" => Ok(Scenario::Reach {
            s: get_usize(v, "s")?,
            g,
        }),
        other => Err(format!("unknown task {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::families;

    #[test]
    fn every_family_round_trips_through_json() {
        for f in families() {
            for seed in 0..3u64 {
                let case = CaseFile {
                    family: f.name.to_string(),
                    seed,
                    reason: "round-trip \"test\"\n".to_string(),
                    scenario: (f.gen)(seed),
                };
                let back = CaseFile::from_json(&case.to_json())
                    .unwrap_or_else(|e| panic!("{}: {e}", f.name));
                assert_eq!(back.family, case.family);
                assert_eq!(back.seed, seed);
                assert_eq!(
                    format!("{:?}", back.scenario),
                    format!("{:?}", case.scenario),
                    "family {} seed {seed}",
                    f.name
                );
            }
        }
    }

    #[test]
    fn big_magnitudes_survive_exactly() {
        let g = DiGraph::from_edges(2, vec![(0, 1)]);
        let c = (1i64 << 62) / 9 + 3; // not representable as f64
        let case = CaseFile {
            family: "mcf-bigm-boundary".into(),
            seed: 0,
            reason: String::new(),
            scenario: Scenario::Mcf(McfProblem::new(g, vec![1], vec![c], vec![-1, 1])),
        };
        let back = CaseFile::from_json(&case.to_json()).unwrap();
        let Scenario::Mcf(p) = back.scenario else {
            panic!("wrong task");
        };
        assert_eq!(p.cost[0], c);
    }

    #[test]
    fn malformed_files_are_typed_errors() {
        assert!(CaseFile::from_json("{}").is_err());
        assert!(CaseFile::from_json("{\"schema\":\"pmcf.case/v2\"}").is_err());
        let bad_edge = format!(
            "{{\"schema\":\"{SCHEMA}\",\"family\":\"x\",\"seed\":0,\"task\":\"reachability\",\"scenario\":{{\"n\":2,\"edges\":[[0,5]],\"s\":0}}}}"
        );
        assert!(CaseFile::from_json(&bad_edge).is_err());
    }
}
