#![warn(missing_docs)]

//! # pmcf-diff — the differential correctness harness
//!
//! Every solver in the workspace answers the same questions: the two IPM
//! engines through `solve_mcf` and the corollary reductions, the
//! combinatorial baselines directly. This crate pits them against each
//! other on seeded *adversarial* instance families and treats any
//! disagreement as a bug in somebody:
//!
//! * [`families`] — seeded generators for the edge cases that broke (or
//!   could break) the solver: zero-capacity and saturated edges,
//!   self-loops, parallel/antiparallel bundles, disconnected demands,
//!   infeasible demand vectors, degenerate all-equal costs, magnitudes
//!   at the `C·W·m² < 2^62` boundary, star/path/expander topologies;
//! * [`driver`] — runs every applicable oracle on a scenario, compares
//!   verdicts, and checks the flight-recorder invariant monitors stayed
//!   clean during the IPM runs;
//! * [`shrink`] — greedy minimization of a mismatching scenario (drop
//!   edges, shrink magnitudes, trim vertices) while it keeps failing;
//! * [`case`] — replayable `pmcf.case/v1` JSON files under
//!   `results/cases/`, written for every shrunken mismatch and replayed
//!   as regression tests by `cargo test`.
//!
//! The `diff_check` binary drives the whole loop and is wired into CI as
//! a bounded-time fuzz-smoke leg.

pub mod case;
pub mod driver;
pub mod families;
pub mod shrink;

pub use case::CaseFile;
pub use driver::{run_scenario, Report};
pub use families::{families, Family, Scenario};
