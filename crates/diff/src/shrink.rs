//! Greedy scenario shrinking.
//!
//! Given a scenario on which some predicate holds (in practice: "the
//! oracles disagree"), repeatedly apply size- and magnitude-reducing
//! transformations, keeping each candidate only if the predicate still
//! holds, until a fixpoint. The passes, in order of aggressiveness:
//!
//! 1. drop one edge at a time (with its capacity/cost/weight),
//! 2. zero out one demand pair at a time (moving a vertex's demand onto
//!    another keeps the vector balanced),
//! 3. shrink each magnitude toward zero (halving), which walks
//!    `2^61`-scale boundary cases down to the smallest failing value,
//! 4. drop trailing vertices that became isolated with zero demand.
//!
//! Greedy one-pass-at-a-time is not globally minimal, but it reliably
//! turns a 30-edge random counterexample into a handful of edges — small
//! enough to read, check in, and debug.

use crate::families::Scenario;
use pmcf_graph::{DiGraph, McfProblem};

/// Shrink `sc` while `bad` keeps holding. `bad` must be true for the
/// input scenario (otherwise the input is returned unchanged).
pub fn shrink(sc: &Scenario, bad: &dyn Fn(&Scenario) -> bool) -> Scenario {
    if !bad(sc) {
        return sc.clone();
    }
    let mut cur = sc.clone();
    loop {
        let mut progressed = false;
        for cand in candidates(&cur) {
            if bad(&cand) {
                cur = cand;
                progressed = true;
                break; // restart candidate enumeration from the smaller scenario
            }
        }
        if !progressed {
            return cur;
        }
    }
}

/// All one-step-smaller candidate scenarios, cheapest-to-check first.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    match sc {
        Scenario::Mcf(p) => {
            for e in 0..p.m() {
                if let Some(q) = drop_edge_mcf(p, e) {
                    out.push(Scenario::Mcf(q));
                }
            }
            // move each vertex's demand onto the lexicographically next
            // demanding vertex (keeps Σb = 0)
            let demanding: Vec<usize> = (0..p.n()).filter(|&v| p.demand[v] != 0).collect();
            if demanding.len() >= 2 {
                for w in demanding.windows(2) {
                    let mut d = p.demand.clone();
                    d[w[1]] += d[w[0]];
                    d[w[0]] = 0;
                    out.push(Scenario::Mcf(McfProblem::new(
                        p.graph.clone(),
                        p.cap.clone(),
                        p.cost.clone(),
                        d,
                    )));
                }
            }
            for e in 0..p.m() {
                for (which, xs) in [("cap", &p.cap), ("cost", &p.cost)] {
                    let x = xs[e];
                    if x == 0 {
                        continue;
                    }
                    for smaller in [x / 2, x.signum()] {
                        if smaller == x {
                            continue;
                        }
                        let mut cap = p.cap.clone();
                        let mut cost = p.cost.clone();
                        match which {
                            "cap" => cap[e] = smaller,
                            _ => cost[e] = smaller,
                        }
                        out.push(Scenario::Mcf(McfProblem::new(
                            p.graph.clone(),
                            cap,
                            cost,
                            p.demand.clone(),
                        )));
                    }
                }
            }
            for v in 0..p.n() {
                if p.demand[v] != 0 {
                    let half = p.demand[v] / 2;
                    // rebalance the other half onto the largest opposite vertex
                    if let Some(u) = (0..p.n())
                        .filter(|&u| u != v && p.demand[u].signum() == -p.demand[v].signum())
                        .max_by_key(|&u| p.demand[u].abs())
                    {
                        let mut d = p.demand.clone();
                        let delta = d[v] - half;
                        d[v] = half;
                        d[u] += delta;
                        out.push(Scenario::Mcf(McfProblem::new(
                            p.graph.clone(),
                            p.cap.clone(),
                            p.cost.clone(),
                            d,
                        )));
                    }
                }
            }
            if let Some(q) = trim_vertex_mcf(p) {
                out.push(Scenario::Mcf(q));
            }
        }
        Scenario::ResolveChurn { base, deltas } => {
            // Dropping a delta (or an insert/delete inside one) shifts
            // the edge indices every later delta refers to, so only the
            // *last* delta loses whole topology ops; set_cost/set_cap
            // ops are index-neutral and can go anywhere.
            if !deltas.is_empty() {
                let mut ds = deltas.clone();
                ds.pop();
                out.push(Scenario::ResolveChurn {
                    base: base.clone(),
                    deltas: ds,
                });
                let last = deltas.len() - 1;
                for (field, len) in [
                    ("insert", deltas[last].insert.len()),
                    ("delete", deltas[last].delete.len()),
                ] {
                    for i in 0..len {
                        let mut ds = deltas.clone();
                        match field {
                            "insert" => {
                                ds[last].insert.remove(i);
                            }
                            _ => {
                                ds[last].delete.remove(i);
                            }
                        }
                        out.push(Scenario::ResolveChurn {
                            base: base.clone(),
                            deltas: ds,
                        });
                    }
                }
            }
            for (k, d) in deltas.iter().enumerate() {
                for i in 0..d.set_cost.len() {
                    let mut ds = deltas.clone();
                    ds[k].set_cost.remove(i);
                    out.push(Scenario::ResolveChurn {
                        base: base.clone(),
                        deltas: ds,
                    });
                }
                for i in 0..d.set_cap.len() {
                    let mut ds = deltas.clone();
                    ds[k].set_cap.remove(i);
                    out.push(Scenario::ResolveChurn {
                        base: base.clone(),
                        deltas: ds,
                    });
                }
            }
            // magnitude halving on the base (indices untouched)
            for e in 0..base.m() {
                for cap_not_cost in [true, false] {
                    let x = if cap_not_cost {
                        base.cap[e]
                    } else {
                        base.cost[e]
                    };
                    if x / 2 == x {
                        continue;
                    }
                    let mut cap = base.cap.clone();
                    let mut cost = base.cost.clone();
                    if cap_not_cost {
                        cap[e] /= 2;
                    } else {
                        cost[e] /= 2;
                    }
                    out.push(Scenario::ResolveChurn {
                        base: McfProblem::new(base.graph.clone(), cap, cost, base.demand.clone()),
                        deltas: deltas.clone(),
                    });
                }
            }
            // magnitude halving inside the deltas
            for (k, d) in deltas.iter().enumerate() {
                for i in 0..d.insert.len() {
                    let (_, _, u, c) = d.insert[i];
                    for (nu, nc) in [(u / 2, c), (u, c / 2)] {
                        if (nu, nc) == (u, c) {
                            continue;
                        }
                        let mut ds = deltas.clone();
                        ds[k].insert[i].2 = nu;
                        ds[k].insert[i].3 = nc;
                        out.push(Scenario::ResolveChurn {
                            base: base.clone(),
                            deltas: ds,
                        });
                    }
                }
                for (field, len) in [("set_cost", d.set_cost.len()), ("set_cap", d.set_cap.len())] {
                    for i in 0..len {
                        let mut ds = deltas.clone();
                        let slot = match field {
                            "set_cost" => &mut ds[k].set_cost[i],
                            _ => &mut ds[k].set_cap[i],
                        };
                        if slot.1 / 2 == slot.1 {
                            continue;
                        }
                        slot.1 /= 2;
                        out.push(Scenario::ResolveChurn {
                            base: base.clone(),
                            deltas: ds,
                        });
                    }
                }
            }
        }
        Scenario::MaxFlow { g, cap, s, t } => {
            for e in 0..g.m() {
                let mut edges = g.edges().to_vec();
                let mut c = cap.clone();
                edges.remove(e);
                c.remove(e);
                out.push(Scenario::MaxFlow {
                    g: DiGraph::from_edges(g.n(), edges),
                    cap: c,
                    s: *s,
                    t: *t,
                });
            }
            for e in 0..g.m() {
                if cap[e] > 1 {
                    let mut c = cap.clone();
                    c[e] /= 2;
                    out.push(Scenario::MaxFlow {
                        g: g.clone(),
                        cap: c,
                        s: *s,
                        t: *t,
                    });
                }
            }
        }
        Scenario::Matching { g, nl } => {
            for e in 0..g.m() {
                let mut edges = g.edges().to_vec();
                edges.remove(e);
                out.push(Scenario::Matching {
                    g: DiGraph::from_edges(g.n(), edges),
                    nl: *nl,
                });
            }
        }
        Scenario::Sssp { g, w, s } => {
            for e in 0..g.m() {
                let mut edges = g.edges().to_vec();
                let mut ww = w.clone();
                edges.remove(e);
                ww.remove(e);
                out.push(Scenario::Sssp {
                    g: DiGraph::from_edges(g.n(), edges),
                    w: ww,
                    s: *s,
                });
            }
            for e in 0..g.m() {
                if w[e].abs() > 1 {
                    let mut ww = w.clone();
                    ww[e] /= 2;
                    out.push(Scenario::Sssp {
                        g: g.clone(),
                        w: ww,
                        s: *s,
                    });
                }
            }
        }
        Scenario::Reach { g, s } => {
            for e in 0..g.m() {
                let mut edges = g.edges().to_vec();
                edges.remove(e);
                out.push(Scenario::Reach {
                    g: DiGraph::from_edges(g.n(), edges),
                    s: *s,
                });
            }
        }
    }
    out
}

fn drop_edge_mcf(p: &McfProblem, e: usize) -> Option<McfProblem> {
    let mut edges = p.graph.edges().to_vec();
    let mut cap = p.cap.clone();
    let mut cost = p.cost.clone();
    edges.remove(e);
    cap.remove(e);
    cost.remove(e);
    Some(McfProblem::new(
        DiGraph::from_edges(p.n(), edges),
        cap,
        cost,
        p.demand.clone(),
    ))
}

/// Drop the last vertex if it is isolated with zero demand.
fn trim_vertex_mcf(p: &McfProblem) -> Option<McfProblem> {
    let last = p.n().checked_sub(1)?;
    if p.demand[last] != 0 {
        return None;
    }
    if p.graph.edges().iter().any(|&(u, v)| u == last || v == last) {
        return None;
    }
    let mut demand = p.demand.clone();
    demand.pop();
    Some(McfProblem::new(
        DiGraph::from_edges(last, p.graph.edges().to_vec()),
        p.cap.clone(),
        p.cost.clone(),
        demand,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcf_graph::generators;

    #[test]
    fn shrinks_to_the_single_guilty_edge() {
        // predicate: "contains an edge with cost ≤ −5" — the shrinker
        // should strip everything else down to one edge
        let base = generators::random_mcf(8, 24, 3, 3, 5);
        let mut cost = base.cost.clone();
        cost[7] = -9;
        let sc = Scenario::Mcf(McfProblem::new(
            base.graph.clone(),
            base.cap.clone(),
            cost,
            base.demand.clone(),
        ));
        let bad = |s: &Scenario| match s {
            Scenario::Mcf(p) => p.cost.iter().any(|&c| c <= -5),
            _ => false,
        };
        let small = shrink(&sc, &bad);
        let Scenario::Mcf(p) = small else { panic!() };
        assert_eq!(p.m(), 1, "exactly the guilty edge survives");
        assert!(p.cost[0] <= -5);
        assert!(p.cost[0] >= -9, "magnitude shrinking also ran");
    }

    #[test]
    fn magnitudes_walk_down_to_the_boundary() {
        // predicate: capacity ≥ 13 somewhere; halving should land near 13
        let g = DiGraph::from_edges(2, vec![(0, 1)]);
        let sc = Scenario::Mcf(McfProblem::new(g, vec![4096], vec![1], vec![0, 0]));
        let bad = |s: &Scenario| match s {
            Scenario::Mcf(p) => p.cap.iter().any(|&u| u >= 13),
            _ => false,
        };
        let Scenario::Mcf(p) = shrink(&sc, &bad) else {
            panic!()
        };
        assert!(
            p.cap[0] >= 13 && p.cap[0] < 26,
            "cap {} not minimal",
            p.cap[0]
        );
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let sc = Scenario::Reach {
            g: DiGraph::from_edges(2, vec![(0, 1)]),
            s: 0,
        };
        let out = shrink(&sc, &|_| false);
        assert_eq!(format!("{out:?}"), format!("{sc:?}"));
    }
}
