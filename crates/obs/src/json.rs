//! A tiny recursive-descent JSON parser.
//!
//! The workspace serializes everything by hand (no serde); this is the
//! matching read side, used to replay `pmcf.events/v1` JSONL recordings
//! and to diff `pmcf.bench/v1` artifacts in `bench-gate`. It parses the
//! full JSON grammar into [`JsonValue`]; numbers keep integer identity
//! when they have one (so sequence numbers and work counters round-trip
//! exactly) and fall back to `f64` otherwise.

use crate::event::{Event, Value};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (fits i64/u64; negative values use the i64 view).
    Int(i64),
    /// An unsigned integer too large for i64.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // surrogate pairs are not emitted by our writers;
                            // map lone surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Parse one JSONL event line back into an [`Event`].
pub fn parse_event_line(line: &str) -> Result<Event, String> {
    let v = parse(line)?;
    let obj = v.as_obj().ok_or("event line is not an object")?;
    let mut seq = 0u64;
    let mut kind = String::new();
    let mut fields = Vec::new();
    for (k, val) in obj {
        match (k.as_str(), val) {
            ("seq", JsonValue::Int(s)) => seq = *s as u64,
            ("seq", JsonValue::UInt(s)) => seq = *s,
            ("kind", JsonValue::Str(s)) => kind = s.clone(),
            // non-negative integers normalize to U64 (the emit side's
            // dominant type) so a recording round-trips exactly
            (_, JsonValue::Int(i)) if *i >= 0 => fields.push((k.clone(), Value::U64(*i as u64))),
            (_, JsonValue::Int(i)) => fields.push((k.clone(), Value::I64(*i))),
            (_, JsonValue::UInt(u)) => fields.push((k.clone(), Value::U64(*u))),
            (_, JsonValue::Float(f)) => fields.push((k.clone(), Value::F64(*f))),
            (_, JsonValue::Str(s)) => fields.push((k.clone(), Value::Str(s.clone()))),
            (_, JsonValue::Bool(b)) => fields.push((k.clone(), Value::Bool(*b))),
            (_, JsonValue::Null) => fields.push((k.clone(), Value::F64(f64::NAN))),
            _ => return Err(format!("nested value in event field {k:?}")),
        }
    }
    if kind.is_empty() {
        return Err("event line missing kind".into());
    }
    Ok(Event { seq, kind, fields })
}

/// Parse a full `pmcf.events/v1` JSONL recording: verifies the header,
/// returns `(events, dropped)`.
pub fn parse_recording(src: &str) -> Result<(Vec<Event>, u64), String> {
    let mut lines = src.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty recording")?;
    let h = parse(header)?;
    match h.get("schema").and_then(JsonValue::as_str) {
        Some(crate::event::SCHEMA) => {}
        other => return Err(format!("bad schema {other:?}")),
    }
    let dropped = h.get("dropped").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        events.push(parse_event_line(line).map_err(|e| format!("line {}: {e}", i + 2))?);
    }
    Ok((events, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        let v = parse(
            r#"{"a":3,"b":[1.5e0,null,-2],"c":"x\"y","d":true,"e":{"f":18446744073709551615}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a"), Some(&JsonValue::Int(3)));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            v.get("e").unwrap().get("f"),
            Some(&JsonValue::UInt(u64::MAX))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn event_line_round_trips() {
        use crate::event::{Event, Value};
        let mut e = Event::new(
            "ipm.iter",
            vec![
                ("iteration", Value::U64(3)),
                ("mu", Value::F64(0.125)),
                ("engine", Value::Str("robust".into())),
                ("ok", Value::Bool(true)),
                ("delta", Value::I64(-4)),
            ],
        );
        e.seq = 11;
        let back = parse_event_line(&e.to_json_line()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn recording_round_trips() {
        use crate::event::{Event, Value};
        use crate::recorder::FlightRecorder;
        let mut rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.push(Event::new("e", vec![("i", Value::U64(i))]));
        }
        let (events, dropped) = parse_recording(&rec.to_jsonl()).unwrap();
        assert_eq!(dropped, 3);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].num("i"), Some(4.0));
    }
}
