//! The flight recorder: a bounded in-memory event log with JSONL dump.
//!
//! The recorder is installed per thread (the solver stack is
//! single-threaded control flow; rayon leaf parallelism never emits).
//! Emitting is a no-op unless a recorder is installed, gated first on a
//! process-global counter so the common disabled path costs one relaxed
//! atomic load.
//!
//! The buffer is a ring: when more than `capacity` events are emitted the
//! *oldest* are evicted — the latest events (the ones that explain a
//! failure) are always retained, and the header of the dump records how
//! many were dropped. `init_from_env` additionally registers a panic hook
//! so a crashing run still leaves its recording behind
//! (`PMCF_EVENTS=<path>` → dump on exit *and* on panic).

use crate::event::{Event, Value, SCHEMA};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Environment variable naming the JSONL output path.
pub const EVENTS_ENV: &str = "PMCF_EVENTS";
/// Environment variable overriding the ring capacity.
pub const EVENTS_CAP_ENV: &str = "PMCF_EVENTS_CAP";
/// Default ring capacity (events retained).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Bounded event log.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
    /// Where `dump` / the panic hook writes, when set.
    pub output: Option<std::path::PathBuf>,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
            output: None,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, mut e: Event) {
        e.seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever emitted (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Clone out the retained events (for in-process monitoring).
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    /// Serialize as JSONL: a schema header line, then one line per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{}\",\"events\":{},\"dropped\":{}}}\n",
            SCHEMA,
            self.events.len(),
            self.dropped
        );
        for e in &self.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Write the JSONL recording to `path` (creating parent directories).
    pub fn dump_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }

    /// Write to the configured output path, if any. Returns whether a
    /// file was written.
    pub fn dump(&self) -> bool {
        match &self.output {
            Some(p) => self.dump_to(p).is_ok(),
            None => false,
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Option<FlightRecorder>> = const { RefCell::new(None) };
}

/// Count of threads with an installed recorder (fast disabled-path gate).
static ACTIVE: AtomicUsize = AtomicUsize::new(0);
static PANIC_HOOK: Once = Once::new();

/// Install a recorder on this thread (replacing any previous one, which
/// is returned).
pub fn install(rec: FlightRecorder) -> Option<FlightRecorder> {
    RECORDER.with(|r| {
        let prev = r.borrow_mut().replace(rec);
        if prev.is_none() {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        prev
    })
}

/// Remove and return this thread's recorder.
pub fn uninstall() -> Option<FlightRecorder> {
    RECORDER.with(|r| {
        let prev = r.borrow_mut().take();
        if prev.is_some() {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
        prev
    })
}

/// Whether this thread is recording (cheap when no thread records).
#[inline]
pub fn recording() -> bool {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    RECORDER.with(|r| r.borrow().is_some())
}

/// Emit an event (no-op when not recording).
#[inline]
pub fn emit(kind: &str, fields: Vec<(&str, Value)>) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.push(Event::new(kind, fields));
        }
    });
}

/// Emit with deferred field construction — `f` runs only when recording,
/// so hot paths pay nothing for field assembly when disabled.
#[inline]
pub fn emit_with(kind: &str, f: impl FnOnce() -> Vec<(&'static str, Value)>) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.push(Event::new(kind, f()));
        }
    });
}

/// Run `f` with mutable access to this thread's recorder, if installed.
pub fn with_recorder<T>(f: impl FnOnce(&mut FlightRecorder) -> T) -> Option<T> {
    RECORDER.with(|r| r.borrow_mut().as_mut().map(f))
}

/// Install a recorder from the environment: when `PMCF_EVENTS=<path>` is
/// set, record into a ring of `PMCF_EVENTS_CAP` (default 65536) events,
/// dump to `<path>` on [`finish`] and — via a process-wide panic hook —
/// on panic. Returns whether recording was enabled.
pub fn init_from_env() -> bool {
    let Some(path) = std::env::var_os(EVENTS_ENV).filter(|p| !p.is_empty()) else {
        return false;
    };
    let cap = std::env::var(EVENTS_CAP_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CAPACITY);
    let mut rec = FlightRecorder::new(cap);
    rec.output = Some(std::path::PathBuf::from(path));
    install(rec);
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // dump the panicking thread's recording before unwinding
            let _ = with_recorder(|rec| {
                rec.push(Event::new(
                    "panic",
                    vec![("message", Value::Str(format!("{info}")))],
                ));
                rec.dump();
            });
            prev(info);
        }));
    });
    true
}

/// Finish recording on this thread: dump to the configured output (if
/// any) and uninstall. Returns the recorder for inspection.
pub fn finish() -> Option<FlightRecorder> {
    let rec = uninstall()?;
    rec.dump();
    Some(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_latest_events() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..7u64 {
            rec.push(Event::new("e", vec![("i", Value::U64(i))]));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 4);
        assert_eq!(rec.emitted(), 7);
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
    }

    #[test]
    fn jsonl_has_header_and_one_line_per_event() {
        let mut rec = FlightRecorder::new(8);
        rec.push(Event::new("a", vec![]));
        rec.push(Event::new("b", vec![("x", Value::F64(1.5))]));
        let out = rec.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"pmcf.events/v1\""));
        assert!(lines[0].contains("\"dropped\":0"));
        assert!(lines[1].contains("\"kind\":\"a\""));
        assert!(lines[2].contains("\"x\":1.5e0"));
    }

    #[test]
    fn thread_local_install_emit_finish() {
        assert!(!recording());
        emit("ignored", vec![]); // no-op without a recorder
        install(FlightRecorder::new(16));
        assert!(recording());
        emit("hello", vec![("n", Value::U64(1))]);
        emit_with("deferred", || vec![("n", Value::U64(2))]);
        let rec = uninstall().unwrap();
        assert!(!recording());
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.events().next().unwrap().kind, "hello");
    }

    #[test]
    fn dump_writes_file() {
        let dir = std::env::temp_dir().join("pmcf_obs_recorder_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.jsonl");
        let mut rec = FlightRecorder::new(4);
        rec.push(Event::new("x", vec![]));
        rec.dump_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.starts_with("{\"schema\":\"pmcf.events/v1\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
