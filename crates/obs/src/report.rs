//! Unified run reports: one machine-readable artifact per solve.
//!
//! PRs 1–6 grew five separate telemetry streams — span profiles, flight
//! recorder events, critical-path ledgers, counters, and pool telemetry —
//! each with its own schema and its own output path. A [`RunReport`]
//! (`pmcf.report/v1`) ties them together for *one* run: the span-profile
//! tree, the critical-path attribution, every counter, a pool-telemetry
//! summary, the invariant-monitor verdicts, and a per-iteration IPM
//! convergence table (μ, duality-gap proxy, step size, CG iterations,
//! wall ns) recorded from both IPM loops.
//!
//! Two ways to produce one:
//!
//! * **Environment** — set `PMCF_REPORT=<path>` and call
//!   [`report_init_from_env`] at process start; both IPM loops then feed
//!   [`record_ipm_iter`], and `tracker_from_env` (in `pmcf-pram`)
//!   switches the span profiler and depth ledger on automatically. At
//!   the end of the run, [`take_run_report`] +
//!   [`RunReport::absorb_tracker`] + [`RunReport::write`] land the
//!   artifact.
//! * **Builder** — call [`report_begin`] / [`record_ipm_iter`] /
//!   [`take_run_report`] programmatically (tests, embedding harnesses).
//!
//! Reports round-trip through the in-tree JSON reader
//! ([`RunReport::from_json`]), which is what the cross-run diff engine
//! ([`crate::reportdiff`]) consumes.
//!
//! Collector overhead when disabled is one relaxed atomic load per IPM
//! iteration — the same discipline as the flight recorder.

use crate::monitor::{run_monitors, Verdict};
use crate::recorder::{self, FlightRecorder, DEFAULT_CAPACITY};
use pmcf_pram::profile::{json_string, SpanReport};
use pmcf_pram::{CritPathEntry, CritPathReport, Tracker};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

pub use pmcf_pram::profile::REPORT_ENV;

/// Schema identifier stamped into every run report.
pub const REPORT_SCHEMA: &str = "pmcf.report/v1";

/// One node of the span tree carried by a report (the profile tree with
/// wall time flattened to nanoseconds so it serializes losslessly).
///
/// Work/depth are **inclusive** — a span's cost contains its children's
/// (child scopes are subsets of the parent scope) — mirroring
/// `pmcf.profile/v1`. Use [`ReportSpan::self_work`] and friends for
/// exclusive ("self") costs.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportSpan {
    /// Span name as passed to `Tracker::span`.
    pub name: String,
    /// Work accumulated inside this span across all invocations.
    pub work: u64,
    /// Depth accumulated inside this span across all invocations.
    pub depth: u64,
    /// Wall nanoseconds spent inside this span across all invocations.
    pub wall_ns: u64,
    /// Number of times the span was entered.
    pub count: u64,
    /// Nested spans, in first-entered order.
    pub children: Vec<ReportSpan>,
}

impl ReportSpan {
    /// Convert a profiler span (recursively).
    pub fn from_profile(s: &SpanReport) -> ReportSpan {
        ReportSpan {
            name: s.name.clone(),
            work: s.work,
            depth: s.depth,
            wall_ns: s.wall.as_nanos() as u64,
            count: s.count,
            children: s.children.iter().map(ReportSpan::from_profile).collect(),
        }
    }

    /// Work charged in this span but not in any child (exclusive cost).
    pub fn self_work(&self) -> u64 {
        self.work
            .saturating_sub(self.children.iter().map(|c| c.work).sum())
    }

    /// Depth charged in this span but not in any child.
    pub fn self_depth(&self) -> u64 {
        self.depth
            .saturating_sub(self.children.iter().map(|c| c.depth).sum())
    }

    /// Wall nanoseconds spent in this span but not in any child.
    pub fn self_wall_ns(&self) -> u64 {
        self.wall_ns
            .saturating_sub(self.children.iter().map(|c| c.wall_ns).sum())
    }
}

/// One row of the per-iteration IPM convergence table.
#[derive(Clone, Debug, PartialEq)]
pub struct IpmIterRow {
    /// Engine that ran the iteration (`"reference"` / `"robust"`).
    pub engine: String,
    /// Iteration index (1-based, as counted by the engine's stats).
    pub iteration: u64,
    /// Path parameter μ at the start of the iteration.
    pub mu: f64,
    /// Duality-gap proxy (`μ · Σ τ` for both engines).
    pub gap: f64,
    /// Multiplicative μ step applied at the end of the iteration
    /// (`None` when the engine took no centering step this iteration).
    pub step: Option<f64>,
    /// CG iterations spent inside this IPM iteration.
    pub cg_iters: u64,
    /// Wall nanoseconds for this IPM iteration.
    pub wall_ns: u64,
}

/// Critical-path attribution carried by a report (a flattened
/// `pmcf.critpath/v1` snapshot).
#[derive(Clone, Debug, PartialEq)]
pub struct CritSummary {
    /// The tracker's total depth at snapshot time.
    pub total_depth: u64,
    /// Sum over entries (equals `total_depth` — the ledger is exact).
    pub attributed_depth: u64,
    /// Fork-join merge points folded into the attribution.
    pub joins: u64,
    /// Span paths on the critical path, deepest first.
    pub entries: Vec<CritPathEntry>,
}

impl CritSummary {
    /// Flatten a ledger report.
    pub fn from_report(r: &CritPathReport) -> CritSummary {
        CritSummary {
            total_depth: r.total_depth,
            attributed_depth: r.attributed_depth,
            joins: r.joins,
            entries: r.entries.clone(),
        }
    }
}

/// Thread-pool telemetry summary (fork/join/steal counters and the
/// busiest-over-mean imbalance ratio at snapshot time).
#[derive(Clone, Debug, PartialEq)]
pub struct PoolSummary {
    /// Worker threads in the pool (1 = sequential execution).
    pub threads: u64,
    /// Fork-join points executed.
    pub joins: u64,
    /// Batches split across the pool.
    pub batches: u64,
    /// Jobs pushed onto the shared queue.
    pub jobs_queued: u64,
    /// First-of-batch jobs run inline on the submitting thread.
    pub jobs_inline: u64,
    /// Queued jobs executed by a blocked thread while it waited.
    pub steals: u64,
    /// Max-over-mean busy time across threads (0.0 when not recorded).
    pub imbalance: f64,
}

/// The unified run report (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Run name (bench bin name, or whatever the builder passed).
    pub name: String,
    /// Pool thread count the run executed with.
    pub threads: u64,
    /// Total charged work (thread-count independent).
    pub work: u64,
    /// Total charged depth (thread-count independent).
    pub depth: u64,
    /// Top-level spans of the profile tree.
    pub spans: Vec<ReportSpan>,
    /// Monotone counters (includes `pmcf.alloc.*` and solver counters).
    pub counters: BTreeMap<String, u64>,
    /// Critical-path attribution, when the depth ledger ran.
    pub critpath: Option<CritSummary>,
    /// Pool telemetry, when available.
    pub pool: Option<PoolSummary>,
    /// Invariant-monitor verdicts over the run's event stream.
    pub verdicts: Vec<Verdict>,
    /// Per-iteration IPM convergence table, in recording order.
    pub convergence: Vec<IpmIterRow>,
}

impl RunReport {
    /// An empty report with just a name.
    pub fn new(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            threads: 1,
            work: 0,
            depth: 0,
            spans: Vec::new(),
            counters: BTreeMap::new(),
            critpath: None,
            pool: None,
            verdicts: Vec::new(),
            convergence: Vec::new(),
        }
    }

    /// Pull totals, the span tree, counters, and the critical path out of
    /// a tracker (profile/critpath sections stay empty on an unprofiled
    /// tracker).
    pub fn absorb_tracker(&mut self, t: &Tracker) {
        self.work = t.work();
        self.depth = t.depth();
        if let Some(p) = t.profile_report() {
            self.spans = p.spans.iter().map(ReportSpan::from_profile).collect();
            self.counters = p.counters.clone();
        }
        if let Some(c) = t.critpath_report() {
            self.critpath = Some(CritSummary::from_report(&c));
        }
    }

    /// Schema-versioned JSON rendering (`pmcf.report/v1`).
    pub fn to_json(&self) -> String {
        fn span_json(s: &ReportSpan, out: &mut String) {
            out.push_str(&format!(
                "{{\"name\":{},\"work\":{},\"depth\":{},\"wall_ns\":{},\"count\":{},\"children\":[",
                json_string(&s.name),
                s.work,
                s.depth,
                s.wall_ns,
                s.count
            ));
            for (i, c) in s.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                span_json(c, out);
            }
            out.push_str("]}");
        }
        let mut out = format!(
            "{{\"schema\":{},\"name\":{},\"threads\":{},\"work\":{},\"depth\":{},\"spans\":[",
            json_string(REPORT_SCHEMA),
            json_string(&self.name),
            self.threads,
            self.work,
            self.depth
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span_json(s, &mut out);
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(k), v));
        }
        out.push_str("},\"critpath\":");
        match &self.critpath {
            None => out.push_str("null"),
            Some(c) => {
                out.push_str(&format!(
                    "{{\"total_depth\":{},\"attributed_depth\":{},\"joins\":{},\"entries\":[",
                    c.total_depth, c.attributed_depth, c.joins
                ));
                for (i, e) in c.entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"path\":{},\"depth\":{}}}",
                        json_string(&e.path),
                        e.depth
                    ));
                }
                out.push_str("]}");
            }
        }
        out.push_str(",\"pool\":");
        match &self.pool {
            None => out.push_str("null"),
            Some(p) => out.push_str(&format!(
                "{{\"threads\":{},\"joins\":{},\"batches\":{},\"jobs_queued\":{},\
                 \"jobs_inline\":{},\"steals\":{},\"imbalance\":{}}}",
                p.threads,
                p.joins,
                p.batches,
                p.jobs_queued,
                p.jobs_inline,
                p.steals,
                fmt_f64(p.imbalance)
            )),
        }
        out.push_str(",\"verdicts\":[");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"monitor\":{},\"ok\":{},\"checked\":{},\"detail\":{}}}",
                json_string(&v.monitor),
                v.ok,
                v.checked,
                json_string(&v.detail)
            ));
        }
        out.push_str("],\"convergence\":[");
        for (i, r) in self.convergence.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"engine\":{},\"iteration\":{},\"mu\":{},\"gap\":{},\"step\":{},\
                 \"cg_iters\":{},\"wall_ns\":{}}}",
                json_string(&r.engine),
                r.iteration,
                fmt_f64(r.mu),
                fmt_f64(r.gap),
                r.step.map(fmt_f64).unwrap_or_else(|| "null".to_string()),
                r.cg_iters,
                r.wall_ns
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parse a `pmcf.report/v1` document (the round-trip inverse of
    /// [`RunReport::to_json`]).
    pub fn from_json(src: &str) -> Result<RunReport, String> {
        use crate::json::{parse, JsonValue};
        let v = parse(src)?;
        match v.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == REPORT_SCHEMA => {}
            other => return Err(format!("not a {REPORT_SCHEMA} report (schema {other:?})")),
        }
        fn span_of(v: &JsonValue) -> Result<ReportSpan, String> {
            Ok(ReportSpan {
                name: str_field(v, "name")?,
                work: u64_field(v, "work")?,
                depth: u64_field(v, "depth")?,
                wall_ns: u64_field(v, "wall_ns")?,
                count: u64_field(v, "count")?,
                children: v
                    .get("children")
                    .and_then(JsonValue::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(span_of)
                    .collect::<Result<_, _>>()?,
            })
        }
        let spans = v
            .get("spans")
            .and_then(JsonValue::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(span_of)
            .collect::<Result<_, _>>()?;
        let mut counters = BTreeMap::new();
        if let Some(obj) = v.get("counters").and_then(JsonValue::as_obj) {
            for (k, cv) in obj {
                counters.insert(
                    k.clone(),
                    as_u64(cv).ok_or_else(|| format!("counter {k:?} is not a u64"))?,
                );
            }
        }
        let critpath = match v.get("critpath") {
            None | Some(JsonValue::Null) => None,
            Some(c) => Some(CritSummary {
                total_depth: u64_field(c, "total_depth")?,
                attributed_depth: u64_field(c, "attributed_depth")?,
                joins: u64_field(c, "joins")?,
                entries: c
                    .get("entries")
                    .and_then(JsonValue::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|e| {
                        Ok(CritPathEntry {
                            path: str_field(e, "path")?,
                            depth: u64_field(e, "depth")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            }),
        };
        let pool = match v.get("pool") {
            None | Some(JsonValue::Null) => None,
            Some(p) => Some(PoolSummary {
                threads: u64_field(p, "threads")?,
                joins: u64_field(p, "joins")?,
                batches: u64_field(p, "batches")?,
                jobs_queued: u64_field(p, "jobs_queued")?,
                jobs_inline: u64_field(p, "jobs_inline")?,
                steals: u64_field(p, "steals")?,
                imbalance: f64_field(p, "imbalance")?,
            }),
        };
        let verdicts = v
            .get("verdicts")
            .and_then(JsonValue::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|m| {
                Ok(Verdict {
                    monitor: str_field(m, "monitor")?,
                    ok: match m.get("ok") {
                        Some(JsonValue::Bool(b)) => *b,
                        _ => return Err("verdict missing boolean `ok`".to_string()),
                    },
                    checked: u64_field(m, "checked")?,
                    detail: str_field(m, "detail")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let convergence = v
            .get("convergence")
            .and_then(JsonValue::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|r| {
                Ok(IpmIterRow {
                    engine: str_field(r, "engine")?,
                    iteration: u64_field(r, "iteration")?,
                    mu: f64_field(r, "mu")?,
                    gap: f64_field(r, "gap")?,
                    step: match r.get("step") {
                        None | Some(JsonValue::Null) => None,
                        Some(s) => Some(s.as_f64().ok_or("step is not a number")?),
                    },
                    cg_iters: u64_field(r, "cg_iters")?,
                    wall_ns: u64_field(r, "wall_ns")?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(RunReport {
            name: str_field(&v, "name")?,
            threads: u64_field(&v, "threads")?,
            work: u64_field(&v, "work")?,
            depth: u64_field(&v, "depth")?,
            spans,
            counters,
            critpath,
            pool,
            verdicts,
            convergence,
        })
    }

    /// Write the JSON report to `path` (creating parent directories).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut body = self.to_json();
        body.push('\n');
        std::fs::write(path, body)
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

fn as_u64(v: &crate::json::JsonValue) -> Option<u64> {
    use crate::json::JsonValue;
    match v {
        JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
        JsonValue::UInt(u) => Some(*u),
        _ => None,
    }
}

fn u64_field(v: &crate::json::JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(as_u64)
        .ok_or_else(|| format!("missing/non-integer field {key:?}"))
}

fn f64_field(v: &crate::json::JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| format!("missing/non-numeric field {key:?}"))
}

fn str_field(v: &crate::json::JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing/non-string field {key:?}"))
}

// ---------------------------------------------------------------------
// The process-global convergence collector.
// ---------------------------------------------------------------------

struct CollectorState {
    rows: Vec<IpmIterRow>,
    path: Option<PathBuf>,
    /// Whether [`report_init_from_env`] installed its own flight
    /// recorder (vs. piggybacking on a `PMCF_EVENTS` one).
    installed_recorder: bool,
}

/// Fast gate: one relaxed load decides the disabled path.
static ACTIVE: AtomicBool = AtomicBool::new(false);

static COLLECTOR: Mutex<CollectorState> = Mutex::new(CollectorState {
    rows: Vec::new(),
    path: None,
    installed_recorder: false,
});

fn lock_collector() -> std::sync::MutexGuard<'static, CollectorState> {
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether a run report is currently being collected.
#[inline]
pub fn report_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Start collecting a run report programmatically (clears any previous
/// collection; no output path is set — the caller keeps the report).
pub fn report_begin() {
    let mut st = lock_collector();
    st.rows.clear();
    st.path = None;
    st.installed_recorder = false;
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Start collecting from the environment: when `PMCF_REPORT=<path>` is
/// set, activate the collector with `<path>` as the output target and —
/// if no flight recorder is installed (no `PMCF_EVENTS`) — install one
/// so the report's monitor verdicts cover the run's events. Returns
/// whether collection was enabled.
pub fn report_init_from_env() -> bool {
    let Some(path) = std::env::var_os(REPORT_ENV).filter(|p| !p.is_empty()) else {
        return false;
    };
    let mut st = lock_collector();
    st.rows.clear();
    st.path = Some(PathBuf::from(path));
    st.installed_recorder = if recorder::recording() {
        false
    } else {
        recorder::install(FlightRecorder::new(DEFAULT_CAPACITY));
        true
    };
    ACTIVE.store(true, Ordering::Relaxed);
    true
}

/// Record one IPM iteration into the active report (no-op when no report
/// is being collected — one relaxed atomic load).
#[inline]
pub fn record_ipm_iter(
    engine: &str,
    iteration: u64,
    mu: f64,
    gap: f64,
    step: Option<f64>,
    cg_iters: u64,
    wall_ns: u64,
) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    lock_collector().rows.push(IpmIterRow {
        engine: engine.to_string(),
        iteration,
        mu,
        gap,
        step,
        cg_iters,
        wall_ns,
    });
}

/// Finish collecting: deactivate and assemble a [`RunReport`] named
/// `name` with the convergence table, pool-telemetry summary, and
/// monitor verdicts over the current flight recording. Returns `None`
/// when no collection was active. The caller typically follows with
/// [`RunReport::absorb_tracker`] and [`RunReport::write`]
/// (to [`report_output_path`]).
pub fn take_run_report(name: &str) -> Option<RunReport> {
    if !ACTIVE.swap(false, Ordering::Relaxed) {
        return None;
    }
    let (rows, installed) = {
        let mut st = lock_collector();
        let installed = std::mem::take(&mut st.installed_recorder);
        (std::mem::take(&mut st.rows), installed)
    };
    let verdicts = recorder::with_recorder(|r| run_monitors(&r.snapshot()))
        .unwrap_or_else(|| run_monitors(&[]));
    if installed {
        recorder::uninstall();
    }
    let pool = rayon::telemetry::snapshot();
    let mut report = RunReport::new(name);
    report.threads = pool.threads as u64;
    report.pool = Some(PoolSummary {
        threads: pool.threads as u64,
        joins: pool.joins,
        batches: pool.batches,
        jobs_queued: pool.jobs_queued,
        jobs_inline: pool.jobs_inline,
        steals: pool.steals,
        imbalance: pool.imbalance_ratio(),
    });
    report.verdicts = verdicts;
    report.convergence = rows;
    Some(report)
}

/// The output path `PMCF_REPORT` named at init time (if any).
pub fn report_output_path() -> Option<PathBuf> {
    lock_collector().path.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcf_pram::Cost;

    /// The collector is process-global; tests touching it must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn sample_report() -> RunReport {
        report_begin();
        record_ipm_iter("reference", 1, 64.0, 128.0, Some(0.5), 12, 1000);
        record_ipm_iter("robust", 1, 64.0, 96.5, None, 7, 900);
        let mut rep = take_run_report("sample").unwrap();
        let mut t = Tracker::profiled().with_critpath();
        t.span("ipm/loop", |t| {
            t.charge(Cost::new(10, 4));
            t.span("ipm/newton", |t| t.charge(Cost::new(30, 6)));
        });
        t.counter("solver.cg_iterations_total", 19);
        rep.absorb_tracker(&t);
        rep
    }

    #[test]
    fn builder_path_collects_convergence_rows() {
        let _g = locked();
        let rep = sample_report();
        assert_eq!(rep.convergence.len(), 2);
        assert_eq!(rep.convergence[0].engine, "reference");
        assert_eq!(rep.convergence[0].step, Some(0.5));
        assert_eq!(rep.convergence[1].step, None);
        assert_eq!(rep.work, 40);
        assert_eq!(rep.depth, 10);
        assert_eq!(rep.counters["solver.cg_iterations_total"], 19);
        let cp = rep.critpath.as_ref().unwrap();
        assert_eq!(cp.total_depth, cp.attributed_depth);
        assert!(rep.pool.is_some());
        assert_eq!(rep.verdicts.len(), 5, "one verdict per monitor");
    }

    #[test]
    fn record_without_begin_is_noop() {
        let _g = locked();
        let _ = take_run_report("drain"); // clear any leftover collection
        record_ipm_iter("reference", 1, 1.0, 1.0, None, 0, 0);
        assert!(take_run_report("x").is_none());
    }

    #[test]
    fn json_round_trips_exactly() {
        let _g = locked();
        let rep = sample_report();
        let json = rep.to_json();
        assert!(json.starts_with("{\"schema\":\"pmcf.report/v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(RunReport::from_json(r#"{"schema":"pmcf.bench/v1"}"#).is_err());
        assert!(RunReport::from_json(r#"{"name":"x"}"#).is_err());
        assert!(RunReport::from_json("not json").is_err());
    }

    #[test]
    fn self_costs_subtract_children() {
        let _g = locked();
        let rep = sample_report();
        let loop_span = rep.spans.iter().find(|s| s.name == "ipm/loop").unwrap();
        assert_eq!(loop_span.work, 40);
        assert_eq!(loop_span.self_work(), 10);
        assert_eq!(loop_span.self_depth(), 4);
    }

    #[test]
    fn write_creates_parent_dirs() {
        let _g = locked();
        let dir = std::env::temp_dir().join("pmcf_obs_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/run.report.json");
        sample_report().write(&path).unwrap();
        let back = RunReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.name, "sample");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
