//! Invariant monitors: stream over a flight recording and flag
//! violations of the paper's guarantees.
//!
//! Each monitor is a pure fold over the event sequence, so verdicts are
//! deterministic functions of the recording — replaying the same JSONL
//! (or the same in-memory snapshot) always yields the same verdicts.
//! A monitor that saw no relevant events passes vacuously with
//! `checked = 0`; a violation carries the offending event's `seq` in its
//! detail string so the recording can be cross-examined.
//!
//! The five monitors and the claims they watch:
//!
//! | monitor | claim |
//! |---|---|
//! | `mu-monotone` | the μ-schedule never increases within a solve (central-path descent) |
//! | `centrality-bound` | `‖z‖_∞ ≤ γ` at every declared centering point (Definition F.1 cond. 1) |
//! | `conductance-certified` | every expander rebuild/prune leaves certified `φ`-expander parts (Lemma 3.1 / Lemma 3.9) |
//! | `tracker-reconciliation` | work/depth counters are monotone, `depth ≤ work`, and span trees never exceed tracker totals |
//! | `iteration-envelope` | outer iterations stay within the declared `c·√n·polylog` envelope (Theorem 1.2) |

use crate::event::Event;

/// Relative slack for floating-point comparisons (serialization rounds
/// through decimal).
const REL_EPS: f64 = 1e-9;

/// One monitor's verdict over a recording.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    /// Monitor name (stable identifier).
    pub monitor: String,
    /// Whether every checked event satisfied the invariant.
    pub ok: bool,
    /// How many events/solves the monitor actually checked.
    pub checked: u64,
    /// Human-readable summary; names the first offending `seq` on
    /// failure.
    pub detail: String,
}

impl Verdict {
    fn pass(monitor: &str, checked: u64, detail: String) -> Self {
        Verdict {
            monitor: monitor.into(),
            ok: true,
            checked,
            detail,
        }
    }

    fn fail(monitor: &str, checked: u64, detail: String) -> Self {
        Verdict {
            monitor: monitor.into(),
            ok: false,
            checked,
            detail,
        }
    }
}

/// Run every monitor; returns one verdict per monitor (fixed order).
pub fn run_monitors(events: &[Event]) -> Vec<Verdict> {
    vec![
        mu_monotone(events),
        centrality_bound(events),
        conductance_certified(events),
        tracker_reconciliation(events),
        iteration_envelope(events),
    ]
}

/// Whether all verdicts are ok.
pub fn all_ok(verdicts: &[Verdict]) -> bool {
    verdicts.iter().all(|v| v.ok)
}

/// Render verdicts as a markdown table.
pub fn to_markdown(verdicts: &[Verdict]) -> String {
    let mut out = String::from("| monitor | verdict | checked | detail |\n|---|---|---|---|\n");
    for v in verdicts {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            v.monitor,
            if v.ok { "ok" } else { "VIOLATED" },
            v.checked,
            v.detail
        ));
    }
    out
}

/// Per-iteration μ events: `ipm.iter` (engine loops) and `ipm.trace`
/// (TraceRecorder) — monitored as independent streams since a traced
/// solve emits both.
fn is_iter_kind(kind: &str) -> bool {
    kind == "ipm.iter" || kind == "ipm.trace"
}

/// μ never increases within a solve (each stream kind tracked
/// separately; `solve.start` resets both).
fn mu_monotone(events: &[Event]) -> Verdict {
    let name = "mu-monotone";
    let mut last: [Option<f64>; 2] = [None, None];
    let mut checked = 0u64;
    for e in events {
        if e.kind == "solve.start" {
            last = [None, None];
            continue;
        }
        if !is_iter_kind(&e.kind) {
            continue;
        }
        let stream = usize::from(e.kind == "ipm.trace");
        let Some(mu) = e.num("mu") else { continue };
        checked += 1;
        if let Some(prev) = last[stream] {
            if mu > prev * (1.0 + REL_EPS) {
                return Verdict::fail(
                    name,
                    checked,
                    format!("μ rose {prev:.6e} → {mu:.6e} at seq {}", e.seq),
                );
            }
        }
        last[stream] = Some(mu);
    }
    Verdict::pass(name, checked, format!("{checked} μ samples non-increasing"))
}

/// Every declared centering point satisfies `‖z‖_∞ ≤ limit`, where the
/// emitting site declares its own limit (γ for in-path correctors, 1.0
/// for the ε-centered ball).
fn centrality_bound(events: &[Event]) -> Verdict {
    let name = "centrality-bound";
    let mut checked = 0u64;
    let mut worst = 0.0f64;
    for e in events {
        if e.kind != "ipm.centered" {
            continue;
        }
        let (Some(c), Some(limit)) = (e.num("centrality"), e.num("limit")) else {
            continue;
        };
        checked += 1;
        worst = worst.max(c / limit.max(1e-300));
        if c > limit * (1.0 + REL_EPS) {
            return Verdict::fail(
                name,
                checked,
                format!("‖z‖∞ = {c:.4} > limit {limit:.4} at seq {}", e.seq),
            );
        }
    }
    Verdict::pass(
        name,
        checked,
        format!("{checked} centering points; worst ‖z‖∞/limit = {worst:.3}"),
    )
}

/// Every expander rebuild/prune event carries a positive φ target and a
/// `certified` flag (the spot-check, when run, found no sparse cut).
fn conductance_certified(events: &[Event]) -> Verdict {
    let name = "conductance-certified";
    let mut checked = 0u64;
    for e in events {
        if e.kind != "expander.rebuild" && e.kind != "expander.prune" {
            continue;
        }
        checked += 1;
        let phi = e.num("phi").unwrap_or(0.0);
        if phi <= 0.0 {
            return Verdict::fail(
                name,
                checked,
                format!("{} without positive φ at seq {}", e.kind, e.seq),
            );
        }
        if let Some(false) = e.get("certified").and_then(|v| v.as_bool()) {
            let measured = e
                .num("measured_phi")
                .map(|p| format!(" (measured φ = {p:.4})"))
                .unwrap_or_default();
            return Verdict::fail(
                name,
                checked,
                format!("uncertified {} at seq {}{measured}", e.kind, e.seq),
            );
        }
    }
    Verdict::pass(
        name,
        checked,
        format!("{checked} rebuild/prune events certified"),
    )
}

/// Work/depth accounting is coherent: counters are monotone within a
/// solve, `depth ≤ work` pointwise, the final totals dominate every
/// in-flight sample, and a profiled run's span tree never accounts more
/// than its tracker (`span_work ≤ work`).
fn tracker_reconciliation(events: &[Event]) -> Verdict {
    let name = "tracker-reconciliation";
    let mut checked = 0u64;
    let mut last_work = 0.0f64;
    let mut last_depth = 0.0f64;
    for e in events {
        if e.kind == "solve.start" {
            last_work = 0.0;
            last_depth = 0.0;
            continue;
        }
        let is_end = e.kind == "solve.end";
        if !is_iter_kind(&e.kind) && !is_end {
            continue;
        }
        let (Some(work), Some(depth)) = (e.num("work"), e.num("depth")) else {
            continue;
        };
        checked += 1;
        if depth > work * (1.0 + REL_EPS) {
            return Verdict::fail(
                name,
                checked,
                format!("depth {depth} > work {work} at seq {}", e.seq),
            );
        }
        if work < last_work * (1.0 - REL_EPS) || depth < last_depth * (1.0 - REL_EPS) {
            return Verdict::fail(
                name,
                checked,
                format!(
                    "counters regressed (work {last_work}→{work}, depth {last_depth}→{depth}) at seq {}",
                    e.seq
                ),
            );
        }
        last_work = work;
        last_depth = depth;
        if is_end {
            if let (Some(span_work), Some(total)) = (e.num("span_work"), e.num("work")) {
                if span_work > total * (1.0 + REL_EPS) {
                    return Verdict::fail(
                        name,
                        checked,
                        format!(
                            "span tree work {span_work} exceeds tracker work {total} at seq {}",
                            e.seq
                        ),
                    );
                }
            }
            last_work = 0.0;
            last_depth = 0.0;
        }
    }
    Verdict::pass(name, checked, format!("{checked} samples reconciled"))
}

/// The declared iteration envelope of Theorem 1.2: with μ shrinking by
/// `1 − r/√Στ` per iteration and `Στ ≈ 2n`, a solve from `μ₀` to `μ_end`
/// takes ≈ `(√(2n)/r)·ln(μ₀/μ_end)` outer iterations. The emitting site
/// declares the safety factor `envelope_c`; the monitor checks
/// `iterations ≤ c·(√(2n)/r)·ln(μ₀/μ_end)`.
fn iteration_envelope(events: &[Event]) -> Verdict {
    let name = "iteration-envelope";
    let mut checked = 0u64;
    let mut worst_frac = 0.0f64;
    let mut start: Option<&Event> = None;
    for e in events {
        if e.kind == "solve.start" {
            start = Some(e);
            continue;
        }
        if e.kind != "solve.end" {
            continue;
        }
        let Some(s) = start.take() else { continue };
        let (Some(n), Some(mu0), Some(mu_end), Some(step_r), Some(c)) = (
            s.num("n"),
            s.num("mu0"),
            s.num("mu_end"),
            s.num("step_r"),
            s.num("envelope_c"),
        ) else {
            continue;
        };
        let Some(iters) = e.num("iterations") else {
            continue;
        };
        checked += 1;
        let polylog = (mu0 / mu_end.max(1e-300)).ln().max(1.0);
        let bound = c * ((2.0 * n).sqrt() / step_r.max(1e-9)) * polylog;
        worst_frac = worst_frac.max(iters / bound.max(1.0));
        if iters > bound {
            return Verdict::fail(
                name,
                checked,
                format!(
                    "{iters} iterations > envelope {bound:.0} (c={c}, n={n}) at seq {}",
                    e.seq
                ),
            );
        }
    }
    Verdict::pass(
        name,
        checked,
        format!(
            "{checked} solves; worst envelope use {:.0}%",
            worst_frac * 100.0
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Value};

    fn ev(kind: &str, fields: Vec<(&str, Value)>) -> Event {
        Event::new(kind, fields)
    }

    fn solve_pair(n: u64, iters: u64) -> Vec<Event> {
        vec![
            ev(
                "solve.start",
                vec![
                    ("engine", "reference".into()),
                    ("n", n.into()),
                    ("m", (n * n).into()),
                    ("mu0", 1000.0.into()),
                    ("mu_end", 0.001.into()),
                    ("step_r", 0.5.into()),
                    ("gamma", 0.25.into()),
                    ("envelope_c", 3.0.into()),
                ],
            ),
            ev(
                "solve.end",
                vec![
                    ("engine", "reference".into()),
                    ("iterations", iters.into()),
                    ("work", 10_000u64.into()),
                    ("depth", 500u64.into()),
                    ("final_mu", 0.001.into()),
                    ("final_centrality", 0.2.into()),
                ],
            ),
        ]
    }

    #[test]
    fn empty_recording_passes_vacuously() {
        let verdicts = run_monitors(&[]);
        assert_eq!(verdicts.len(), 5);
        assert!(all_ok(&verdicts));
        assert!(verdicts.iter().all(|v| v.checked == 0));
    }

    #[test]
    fn monotone_mu_passes_and_rise_fails() {
        let mut events = vec![
            ev("ipm.iter", vec![("mu", 10.0.into())]),
            ev("ipm.iter", vec![("mu", 5.0.into())]),
        ];
        assert!(mu_monotone(&events).ok);
        events.push(ev("ipm.iter", vec![("mu", 7.0.into())]));
        let v = mu_monotone(&events);
        assert!(!v.ok);
        assert!(v.detail.contains("rose"));
    }

    #[test]
    fn mu_resets_between_solves() {
        let events = vec![
            ev("ipm.iter", vec![("mu", 1.0.into())]),
            ev("solve.start", vec![]),
            ev("ipm.iter", vec![("mu", 50.0.into())]), // fresh solve: fine
        ];
        assert!(mu_monotone(&events).ok);
    }

    #[test]
    fn trace_and_iter_streams_are_independent() {
        // a traced solve interleaves both kinds with the trace lagging
        let events = vec![
            ev("ipm.iter", vec![("mu", 10.0.into())]),
            ev("ipm.trace", vec![("mu", 10.0.into())]),
            ev("ipm.iter", vec![("mu", 5.0.into())]),
            ev("ipm.trace", vec![("mu", 5.0.into())]),
        ];
        assert!(mu_monotone(&events).ok);
    }

    #[test]
    fn centrality_limit_is_event_declared() {
        let ok = vec![ev(
            "ipm.centered",
            vec![("centrality", 0.9.into()), ("limit", 1.0.into())],
        )];
        assert!(centrality_bound(&ok).ok);
        let bad = vec![ev(
            "ipm.centered",
            vec![("centrality", 0.3.into()), ("limit", 0.25.into())],
        )];
        let v = centrality_bound(&bad);
        assert!(!v.ok);
        assert!(v.detail.contains("‖z‖∞"));
    }

    #[test]
    fn uncertified_rebuild_is_flagged() {
        let ok = vec![ev(
            "expander.rebuild",
            vec![("phi", 0.1.into()), ("certified", true.into())],
        )];
        assert!(conductance_certified(&ok).ok);
        let bad = vec![ev(
            "expander.prune",
            vec![
                ("phi", 0.1.into()),
                ("certified", false.into()),
                ("measured_phi", 0.01.into()),
            ],
        )];
        let v = conductance_certified(&bad);
        assert!(!v.ok);
        assert!(v.detail.contains("measured φ"));
    }

    #[test]
    fn counter_regression_is_flagged() {
        let good = vec![
            ev(
                "ipm.iter",
                vec![("work", 10u64.into()), ("depth", 4u64.into())],
            ),
            ev(
                "ipm.iter",
                vec![("work", 20u64.into()), ("depth", 8u64.into())],
            ),
        ];
        assert!(tracker_reconciliation(&good).ok);
        let bad = vec![
            ev(
                "ipm.iter",
                vec![("work", 20u64.into()), ("depth", 8u64.into())],
            ),
            ev(
                "ipm.iter",
                vec![("work", 10u64.into()), ("depth", 9u64.into())],
            ),
        ];
        assert!(!tracker_reconciliation(&bad).ok);
        let deep = vec![ev(
            "ipm.iter",
            vec![("work", 5u64.into()), ("depth", 50u64.into())],
        )];
        assert!(!tracker_reconciliation(&deep).ok);
    }

    #[test]
    fn span_work_above_tracker_work_fails() {
        let events = vec![ev(
            "solve.end",
            vec![
                ("work", 100u64.into()),
                ("depth", 10u64.into()),
                ("span_work", 150u64.into()),
            ],
        )];
        let v = tracker_reconciliation(&events);
        assert!(!v.ok);
        assert!(v.detail.contains("span tree"));
    }

    #[test]
    fn envelope_accepts_sqrt_n_and_rejects_blowup() {
        // n = 100: bound = 3·(√200/0.5)·ln(10^6) ≈ 3·28.3·13.8 ≈ 1172
        let ok = solve_pair(100, 900);
        assert!(iteration_envelope(&ok).ok);
        let bad = solve_pair(100, 5000);
        let v = iteration_envelope(&bad);
        assert!(!v.ok);
        assert!(v.detail.contains("envelope"));
    }

    #[test]
    fn full_run_returns_five_verdicts_in_stable_order() {
        let verdicts = run_monitors(&solve_pair(64, 500));
        let names: Vec<&str> = verdicts.iter().map(|v| v.monitor.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "mu-monotone",
                "centrality-bound",
                "conductance-certified",
                "tracker-reconciliation",
                "iteration-envelope"
            ]
        );
        assert!(all_ok(&verdicts));
        let md = to_markdown(&verdicts);
        assert!(md.contains("| mu-monotone | ok |"));
    }
}
