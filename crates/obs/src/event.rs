//! The `pmcf.events/v1` event model.
//!
//! One [`Event`] is one line of a flight recording: a monotone sequence
//! number, a dot-separated `kind` (`ipm.iter`, `expander.rebuild`, …),
//! and an ordered list of named [`Value`] fields. Events are
//! self-describing — a monitor never needs out-of-band context beyond
//! what the emitting site put into the event — which is what makes a
//! recording replayable from its JSONL serialization alone.

use pmcf_pram::profile::json_string;

/// Schema identifier stamped into the header line of every recording.
pub const SCHEMA: &str = "pmcf.events/v1";

/// A field value (the subset of JSON the event stream needs).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite serializes as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Numeric view (integers widen losslessly enough for monitoring).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:e}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => out.push_str(&json_string(s)),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotone sequence number assigned at emit time (survives ring
    /// eviction, so gaps reveal dropped history).
    pub seq: u64,
    /// Dot-separated event kind, e.g. `ipm.iter`.
    pub kind: String,
    /// Ordered named fields.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Build an event (the recorder assigns `seq`).
    pub fn new(kind: &str, fields: Vec<(&str, Value)>) -> Self {
        Event {
            seq: 0,
            kind: kind.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Look up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Numeric field by name.
    pub fn num(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// String field by name.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Render as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str(&format!(
            "{{\"seq\":{},\"kind\":{}",
            self.seq,
            json_string(&self.kind)
        ));
        for (k, v) in &self.fields {
            out.push(',');
            out.push_str(&json_string(k));
            out.push(':');
            v.render(&mut out);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_renders_as_json_line() {
        let mut e = Event::new(
            "ipm.iter",
            vec![
                ("iteration", Value::from(3usize)),
                ("mu", Value::from(0.5f64)),
                ("engine", Value::from("robust")),
                ("ok", Value::from(true)),
            ],
        );
        e.seq = 7;
        let line = e.to_json_line();
        assert!(line.starts_with("{\"seq\":7,\"kind\":\"ipm.iter\""));
        assert!(line.contains("\"iteration\":3"));
        assert!(line.contains("\"mu\":5e-1"));
        assert!(line.contains("\"engine\":\"robust\""));
        assert!(line.contains("\"ok\":true"));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn non_finite_floats_serialize_null() {
        let e = Event::new("x", vec![("v", Value::F64(f64::NAN))]);
        assert!(e.to_json_line().contains("\"v\":null"));
    }

    #[test]
    fn field_accessors() {
        let e = Event::new(
            "k",
            vec![("a", Value::U64(2)), ("b", Value::Str("s".into()))],
        );
        assert_eq!(e.num("a"), Some(2.0));
        assert_eq!(e.str_field("b"), Some("s"));
        assert!(e.get("c").is_none());
    }
}
