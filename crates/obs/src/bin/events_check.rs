//! `events_check`: replay a `pmcf.events/v1` flight recording through the
//! invariant monitors.
//!
//! ```text
//! events_check <recording.jsonl> [--quiet]
//! ```
//!
//! Prints a verdict table (markdown) and exits nonzero if any monitor
//! reports a violation. Used in CI to assert that the seed instances
//! produce recordings on which every monitor reports `ok`.

use pmcf_obs::json::parse_recording;
use pmcf_obs::monitor::{all_ok, run_monitors, to_markdown};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: events_check <recording.jsonl> [--quiet]");
        std::process::exit(2);
    };
    let quiet = args.any(|a| a == "--quiet" || a == "-q");

    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("events_check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let (events, dropped) = match parse_recording(&src) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("events_check: {path} is not a pmcf.events/v1 recording: {e}");
            std::process::exit(2);
        }
    };

    let verdicts = run_monitors(&events);
    if !quiet {
        println!(
            "# events_check: {path} ({} events, {} dropped)\n",
            events.len(),
            dropped
        );
        print!("{}", to_markdown(&verdicts));
    }
    if all_ok(&verdicts) {
        if !quiet {
            println!("\nall monitors ok");
        }
    } else {
        for v in verdicts.iter().filter(|v| !v.ok) {
            eprintln!("events_check: VIOLATED {}: {}", v.monitor, v.detail);
        }
        std::process::exit(1);
    }
}
