//! `report_diff` — diff two `pmcf.report/v1` run reports and print the
//! span-level triage table.
//!
//! Usage:
//! ```text
//! report_diff <baseline.report.json> <candidate.report.json>
//!             [--top K] [--json <path|->] [--expect-identical-costs] [--quiet]
//! ```
//!
//! `--expect-identical-costs` turns the diff into an assertion: exit 1
//! unless charged work/depth are bit-identical on every span (the
//! cross-`RAYON_NUM_THREADS` determinism check; wall time is exempt).
//!
//! Exit codes: 0 ok, 1 cost-identity assertion failed, 2 usage / I/O /
//! parse error.

use pmcf_obs::{diff_reports, ReportDiff, RunReport};
use std::process::ExitCode;

struct Cli {
    baseline: String,
    candidate: String,
    top: usize,
    json: Option<String>,
    expect_identical: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: report_diff <baseline.report.json> <candidate.report.json> \
         [--top K] [--json <path|->] [--expect-identical-costs] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut positional = Vec::new();
    let mut top = 10usize;
    let mut json = None;
    let mut expect_identical = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => {
                top = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--top requires an integer");
                    usage()
                })
            }
            "--json" => json = args.next(),
            "--expect-identical-costs" => expect_identical = true,
            "--quiet" => quiet = true,
            other if !other.starts_with("--") => positional.push(other.to_string()),
            other => {
                eprintln!("unrecognized argument {other:?}");
                usage();
            }
        }
    }
    if positional.len() != 2 {
        eprintln!("expected exactly two report paths");
        usage();
    }
    let mut it = positional.into_iter();
    Cli {
        baseline: it.next().unwrap(),
        candidate: it.next().unwrap(),
        top,
        json,
        expect_identical,
        quiet,
    }
}

fn load(path: &str) -> Result<RunReport, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    RunReport::from_json(&src).map_err(|e| format!("{path}: {e}"))
}

fn write_json(spec: &str, diff: &ReportDiff) -> Result<(), String> {
    let mut body = diff.to_json();
    body.push('\n');
    if spec == "-" {
        print!("{body}");
        return Ok(());
    }
    let path = std::path::Path::new(spec);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, body).map_err(|e| format!("writing {spec}: {e}"))
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let run = || -> Result<bool, String> {
        let base = load(&cli.baseline)?;
        let cand = load(&cli.candidate)?;
        let diff = diff_reports(&base, &cand);
        // markdown goes to stderr when the JSON stream owns stdout,
        // mirroring the bench bins' `--json -` convention
        if !cli.quiet {
            if cli.json.as_deref() == Some("-") {
                eprintln!("{}", diff.to_markdown(cli.top));
            } else {
                println!("{}", diff.to_markdown(cli.top));
            }
        }
        if let Some(spec) = &cli.json {
            write_json(spec, &diff)?;
        }
        if cli.expect_identical && !diff.charged_costs_identical() {
            eprintln!("report_diff: charged work/depth differ between runs:");
            for v in diff.charged_cost_violations().iter().take(20) {
                eprintln!("  {v}");
            }
            return Ok(false);
        }
        Ok(true)
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("report_diff: {e}");
            ExitCode::from(2)
        }
    }
}
