//! `pmcf-obs`: observability for the parallel min-cost-flow stack.
//!
//! Three pieces, layered bottom-up:
//!
//! 1. **Flight recorder** ([`recorder`]) — a bounded in-memory ring of
//!    [`Event`]s fed by `emit` calls sprinkled through the solver
//!    (IPM iterations, expander maintenance, sampler calls). Set
//!    `PMCF_EVENTS=<path>` to dump a `pmcf.events/v1` JSONL recording on
//!    completion *and* on panic.
//! 2. **Replay** ([`json`]) — a dependency-free JSON parser that reads a
//!    recording (or a `pmcf.bench/v1` artifact) back into events.
//! 3. **Invariant monitors** ([`monitor`]) — deterministic folds over an
//!    event stream flagging violations of the guarantees the paper
//!    proves: μ-monotonicity, centrality bounds, certified conductance,
//!    tracker reconciliation, and the `√n·polylog` iteration envelope.
//! 4. **Trace exporter** ([`tracevent`]) — `PMCF_TRACE=1` turns the
//!    thread pool's wall-clock telemetry plus [`trace_scope`]
//!    annotations into a Perfetto-loadable Chrome trace-event file.
//! 5. **Unified run reports** ([`report`]) — `PMCF_REPORT=<path>` ties
//!    one run's span profile, critical path, counters, pool telemetry,
//!    monitor verdicts, and per-iteration IPM convergence table into a
//!    single `pmcf.report/v1` artifact; the [`reportdiff`] engine (and
//!    the `report_diff` bin) aligns two such reports span-by-span and
//!    ranks the regressing spans for triage.
//!
//! The crate depends only on `pmcf-pram` (JSON string escaping) and the
//! in-tree `rayon` shim (pool telemetry), both of which sit below every
//! solver crate, so the whole workspace can emit events without cycles.

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod monitor;
pub mod recorder;
pub mod report;
pub mod reportdiff;
pub mod tracevent;

pub use event::{Event, Value, SCHEMA};
pub use monitor::{all_ok, run_monitors, Verdict};
pub use recorder::{
    emit, emit_with, finish, init_from_env, install, recording, uninstall, with_recorder,
    FlightRecorder,
};
pub use report::{
    record_ipm_iter, report_active, report_begin, report_init_from_env, report_output_path,
    take_run_report, IpmIterRow, RunReport, REPORT_ENV, REPORT_SCHEMA,
};
pub use reportdiff::{diff_reports, DiffStatus, ReportDiff, SpanDelta, DIFF_SCHEMA};
pub use tracevent::{
    trace_finish, trace_init_from_env, trace_scope, tracing_active, TraceScope, TRACE_ENV,
    TRACE_SCHEMA,
};
