//! Cross-run report diffing: which span regressed, by how much?
//!
//! [`diff_reports`] aligns two [`RunReport`] span trees by span *path*
//! (segments joined with the critical-path ledger's `" > "` separator),
//! producing one [`SpanDelta`] per path — kept, added, or removed — with
//! exact per-span deltas of work, depth, wall time, and call counts,
//! plus counter deltas (which cover `pmcf.alloc.*` and the solver's CG
//! totals) and per-engine convergence aggregates.
//!
//! Span work/depth in a profile are **inclusive**: inflating one leaf
//! inflates every ancestor by the same amount. Ranking therefore sorts
//! by the **self** (exclusive) work delta first, so the triage table
//! names the actual culprit span rather than its enclosing phases.
//!
//! Because charged work/depth are a deterministic accounting — bit
//! identical across `RAYON_NUM_THREADS` — two identical-seed runs must
//! show *zero* work/depth delta on every span; anything else is a real
//! behavioral difference. [`ReportDiff::charged_costs_identical`] checks
//! exactly that (wall time is excluded — it is honest clock time and
//! never identical).
//!
//! The result serializes as `pmcf.reportdiff/v1`
//! ([`ReportDiff::to_json`] / [`ReportDiff::from_json`]) and renders as
//! a markdown triage table ([`ReportDiff::to_markdown`]) — the same
//! table `bench-gate` attaches to a failure when baseline and candidate
//! reports are available.

use crate::report::{ReportSpan, RunReport};
use pmcf_pram::critpath::PATH_SEP;
use pmcf_pram::profile::json_string;
use std::collections::BTreeMap;

/// Schema identifier stamped into every diff document.
pub const DIFF_SCHEMA: &str = "pmcf.reportdiff/v1";

/// Flattened per-span measurements (one side of a [`SpanDelta`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStats {
    /// Inclusive work.
    pub work: u64,
    /// Inclusive depth.
    pub depth: u64,
    /// Inclusive wall nanoseconds.
    pub wall_ns: u64,
    /// Times the span was entered.
    pub count: u64,
    /// Exclusive work (inclusive minus the immediate children's).
    pub self_work: u64,
    /// Exclusive depth.
    pub self_depth: u64,
    /// Exclusive wall nanoseconds.
    pub self_wall_ns: u64,
}

/// How a span path fared in the alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffStatus {
    /// Present in both runs.
    Kept,
    /// Only in the candidate run.
    Added,
    /// Only in the baseline run.
    Removed,
}

impl DiffStatus {
    /// Stable lowercase label used in JSON and markdown.
    pub fn label(self) -> &'static str {
        match self {
            DiffStatus::Kept => "kept",
            DiffStatus::Added => "added",
            DiffStatus::Removed => "removed",
        }
    }

    fn from_label(s: &str) -> Option<DiffStatus> {
        match s {
            "kept" => Some(DiffStatus::Kept),
            "added" => Some(DiffStatus::Added),
            "removed" => Some(DiffStatus::Removed),
            _ => None,
        }
    }
}

/// One aligned span path with both sides' stats (a missing side counts
/// as zero in every delta).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanDelta {
    /// Span path, segments joined by `" > "`.
    pub path: String,
    /// Kept / added / removed.
    pub status: DiffStatus,
    /// Baseline stats (`None` for added spans).
    pub base: Option<SpanStats>,
    /// Candidate stats (`None` for removed spans).
    pub cand: Option<SpanStats>,
}

impl SpanDelta {
    fn b(&self) -> SpanStats {
        self.base.unwrap_or_default()
    }

    fn c(&self) -> SpanStats {
        self.cand.unwrap_or_default()
    }

    /// Candidate-minus-baseline inclusive work.
    pub fn d_work(&self) -> i64 {
        self.c().work as i64 - self.b().work as i64
    }

    /// Candidate-minus-baseline inclusive depth.
    pub fn d_depth(&self) -> i64 {
        self.c().depth as i64 - self.b().depth as i64
    }

    /// Candidate-minus-baseline inclusive wall nanoseconds.
    pub fn d_wall_ns(&self) -> i64 {
        self.c().wall_ns as i64 - self.b().wall_ns as i64
    }

    /// Candidate-minus-baseline exclusive (self) work — the ranking key.
    pub fn d_self_work(&self) -> i64 {
        self.c().self_work as i64 - self.b().self_work as i64
    }

    /// Candidate-minus-baseline exclusive (self) depth.
    pub fn d_self_depth(&self) -> i64 {
        self.c().self_depth as i64 - self.b().self_depth as i64
    }

    /// Candidate-minus-baseline call count.
    pub fn d_count(&self) -> i64 {
        self.c().count as i64 - self.b().count as i64
    }
}

/// One counter present in either run.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Baseline value (`None` when absent).
    pub base: Option<u64>,
    /// Candidate value (`None` when absent).
    pub cand: Option<u64>,
}

impl CounterDelta {
    /// Candidate-minus-baseline (missing side counts as zero).
    pub fn delta(&self) -> i64 {
        self.cand.unwrap_or(0) as i64 - self.base.unwrap_or(0) as i64
    }
}

/// Per-engine convergence aggregates across the two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvergenceDelta {
    /// IPM engine name.
    pub engine: String,
    /// Baseline iteration count.
    pub base_iterations: u64,
    /// Candidate iteration count.
    pub cand_iterations: u64,
    /// Baseline total CG iterations across the solve.
    pub base_cg: u64,
    /// Candidate total CG iterations.
    pub cand_cg: u64,
    /// Baseline final μ (0.0 when the engine recorded no iterations).
    pub base_final_mu: f64,
    /// Candidate final μ.
    pub cand_final_mu: f64,
}

/// The full cross-run diff (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct ReportDiff {
    /// Baseline run name.
    pub baseline: String,
    /// Candidate run name.
    pub candidate: String,
    /// Baseline total charged work.
    pub base_work: u64,
    /// Candidate total charged work.
    pub cand_work: u64,
    /// Baseline total charged depth.
    pub base_depth: u64,
    /// Candidate total charged depth.
    pub cand_depth: u64,
    /// Every span path in either run, exactly once, sorted by path.
    pub spans: Vec<SpanDelta>,
    /// Every counter in either run, exactly once, sorted by name.
    pub counters: Vec<CounterDelta>,
    /// Per-engine convergence aggregates (union of engines, sorted).
    pub convergence: Vec<ConvergenceDelta>,
}

/// Flatten a span tree into path → stats (paths are unique because the
/// profiler merges same-name siblings; aggregation is defensive).
fn flatten(spans: &[ReportSpan], prefix: &str, out: &mut BTreeMap<String, SpanStats>) {
    for s in spans {
        let path = if prefix.is_empty() {
            s.name.clone()
        } else {
            format!("{prefix}{PATH_SEP}{}", s.name)
        };
        let e = out.entry(path.clone()).or_default();
        e.work += s.work;
        e.depth += s.depth;
        e.wall_ns += s.wall_ns;
        e.count += s.count;
        e.self_work += s.self_work();
        e.self_depth += s.self_depth();
        e.self_wall_ns += s.self_wall_ns();
        flatten(&s.children, &path, out);
    }
}

fn convergence_aggregate(r: &RunReport) -> BTreeMap<String, (u64, u64, f64)> {
    let mut out: BTreeMap<String, (u64, u64, f64)> = BTreeMap::new();
    for row in &r.convergence {
        let e = out.entry(row.engine.clone()).or_insert((0, 0, 0.0));
        e.0 += 1;
        e.1 += row.cg_iters;
        e.2 = row.mu; // rows are in recording order; the last one wins
    }
    out
}

/// Align two reports (see module docs). Every span path and counter name
/// in either report appears exactly once in the result.
pub fn diff_reports(base: &RunReport, cand: &RunReport) -> ReportDiff {
    let mut bmap = BTreeMap::new();
    let mut cmap = BTreeMap::new();
    flatten(&base.spans, "", &mut bmap);
    flatten(&cand.spans, "", &mut cmap);
    let mut paths: Vec<&String> = bmap.keys().collect();
    for p in cmap.keys() {
        if !bmap.contains_key(p) {
            paths.push(p);
        }
    }
    paths.sort();
    let spans = paths
        .into_iter()
        .map(|p| {
            let b = bmap.get(p).copied();
            let c = cmap.get(p).copied();
            SpanDelta {
                path: p.clone(),
                status: match (b.is_some(), c.is_some()) {
                    (true, true) => DiffStatus::Kept,
                    (false, _) => DiffStatus::Added,
                    (_, false) => DiffStatus::Removed,
                },
                base: b,
                cand: c,
            }
        })
        .collect();

    let mut names: Vec<&String> = base.counters.keys().collect();
    for n in cand.counters.keys() {
        if !base.counters.contains_key(n) {
            names.push(n);
        }
    }
    names.sort();
    let counters = names
        .into_iter()
        .map(|n| CounterDelta {
            name: n.clone(),
            base: base.counters.get(n).copied(),
            cand: cand.counters.get(n).copied(),
        })
        .collect();

    let bconv = convergence_aggregate(base);
    let cconv = convergence_aggregate(cand);
    let mut engines: Vec<&String> = bconv.keys().collect();
    for e in cconv.keys() {
        if !bconv.contains_key(e) {
            engines.push(e);
        }
    }
    engines.sort();
    let convergence = engines
        .into_iter()
        .map(|e| {
            let b = bconv.get(e).copied().unwrap_or((0, 0, 0.0));
            let c = cconv.get(e).copied().unwrap_or((0, 0, 0.0));
            ConvergenceDelta {
                engine: e.clone(),
                base_iterations: b.0,
                cand_iterations: c.0,
                base_cg: b.1,
                cand_cg: c.1,
                base_final_mu: b.2,
                cand_final_mu: c.2,
            }
        })
        .collect();

    ReportDiff {
        baseline: base.name.clone(),
        candidate: cand.name.clone(),
        base_work: base.work,
        cand_work: cand.work,
        base_depth: base.depth,
        cand_depth: cand.depth,
        spans,
        counters,
        convergence,
    }
}

impl ReportDiff {
    /// Spans ranked most-regressing first: by self-work delta, then
    /// inclusive work delta, then wall delta (ties broken by path).
    /// Returns at most `k` spans that regressed on *some* axis; spans
    /// with no positive delta never appear.
    pub fn ranked(&self, k: usize) -> Vec<&SpanDelta> {
        let mut regressed: Vec<&SpanDelta> = self
            .spans
            .iter()
            .filter(|d| {
                d.d_self_work() > 0
                    || d.d_work() > 0
                    || d.d_self_depth() > 0
                    || d.d_depth() > 0
                    || d.d_wall_ns() > 0
                    || d.status == DiffStatus::Added
            })
            .collect();
        regressed.sort_by(|a, b| {
            b.d_self_work()
                .cmp(&a.d_self_work())
                .then(b.d_work().cmp(&a.d_work()))
                .then(b.d_wall_ns().cmp(&a.d_wall_ns()))
                .then(a.path.cmp(&b.path))
        });
        regressed.truncate(k);
        regressed
    }

    /// Whether the two runs charged identical work and depth — totals
    /// and every span, with no span added or removed. This is the
    /// cross-thread-count determinism check: same seed, different
    /// `RAYON_NUM_THREADS` must return `true`. Wall time and pool
    /// telemetry are ignored (honest clock time differs).
    pub fn charged_costs_identical(&self) -> bool {
        self.base_work == self.cand_work
            && self.base_depth == self.cand_depth
            && self
                .spans
                .iter()
                .all(|d| d.status == DiffStatus::Kept && d.d_work() == 0 && d.d_depth() == 0)
    }

    /// Span paths violating [`charged_costs_identical`], with their
    /// work/depth deltas (for error messages).
    pub fn charged_cost_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.base_work != self.cand_work {
            out.push(format!(
                "total work {} → {}",
                self.base_work, self.cand_work
            ));
        }
        if self.base_depth != self.cand_depth {
            out.push(format!(
                "total depth {} → {}",
                self.base_depth, self.cand_depth
            ));
        }
        for d in &self.spans {
            if d.status != DiffStatus::Kept {
                out.push(format!("{} ({})", d.path, d.status.label()));
            } else if d.d_work() != 0 || d.d_depth() != 0 {
                out.push(format!(
                    "{} (Δwork {:+}, Δdepth {:+})",
                    d.path,
                    d.d_work(),
                    d.d_depth()
                ));
            }
        }
        out
    }

    /// Schema-versioned JSON rendering (`pmcf.reportdiff/v1`).
    pub fn to_json(&self) -> String {
        fn stats_json(s: &Option<SpanStats>) -> String {
            match s {
                None => "null".to_string(),
                Some(s) => format!(
                    "{{\"work\":{},\"depth\":{},\"wall_ns\":{},\"count\":{},\
                     \"self_work\":{},\"self_depth\":{},\"self_wall_ns\":{}}}",
                    s.work, s.depth, s.wall_ns, s.count, s.self_work, s.self_depth, s.self_wall_ns
                ),
            }
        }
        let mut out = format!(
            "{{\"schema\":{},\"baseline\":{},\"candidate\":{},\
             \"work\":{{\"base\":{},\"cand\":{}}},\"depth\":{{\"base\":{},\"cand\":{}}},\"spans\":[",
            json_string(DIFF_SCHEMA),
            json_string(&self.baseline),
            json_string(&self.candidate),
            self.base_work,
            self.cand_work,
            self.base_depth,
            self.cand_depth
        );
        for (i, d) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":{},\"status\":{},\"base\":{},\"cand\":{}}}",
                json_string(&d.path),
                json_string(d.status.label()),
                stats_json(&d.base),
                stats_json(&d.cand)
            ));
        }
        out.push_str("],\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let opt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "{{\"name\":{},\"base\":{},\"cand\":{}}}",
                json_string(&c.name),
                opt(c.base),
                opt(c.cand)
            ));
        }
        out.push_str("],\"convergence\":[");
        for (i, c) in self.convergence.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"engine\":{},\"base_iterations\":{},\"cand_iterations\":{},\
                 \"base_cg\":{},\"cand_cg\":{},\"base_final_mu\":{},\"cand_final_mu\":{}}}",
                json_string(&c.engine),
                c.base_iterations,
                c.cand_iterations,
                c.base_cg,
                c.cand_cg,
                fmt_f64(c.base_final_mu),
                fmt_f64(c.cand_final_mu)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parse a `pmcf.reportdiff/v1` document.
    pub fn from_json(src: &str) -> Result<ReportDiff, String> {
        use crate::json::{parse, JsonValue};
        let v = parse(src)?;
        match v.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == DIFF_SCHEMA => {}
            other => return Err(format!("not a {DIFF_SCHEMA} document (schema {other:?})")),
        }
        fn u64_of(v: &JsonValue) -> Option<u64> {
            match v {
                JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
                JsonValue::UInt(u) => Some(*u),
                _ => None,
            }
        }
        fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(u64_of)
                .ok_or_else(|| format!("missing/non-integer field {key:?}"))
        }
        fn str_field(v: &JsonValue, key: &str) -> Result<String, String> {
            v.get(key)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing/non-string field {key:?}"))
        }
        fn stats_of(v: Option<&JsonValue>) -> Result<Option<SpanStats>, String> {
            match v {
                None | Some(JsonValue::Null) => Ok(None),
                Some(s) => Ok(Some(SpanStats {
                    work: u64_field(s, "work")?,
                    depth: u64_field(s, "depth")?,
                    wall_ns: u64_field(s, "wall_ns")?,
                    count: u64_field(s, "count")?,
                    self_work: u64_field(s, "self_work")?,
                    self_depth: u64_field(s, "self_depth")?,
                    self_wall_ns: u64_field(s, "self_wall_ns")?,
                })),
            }
        }
        let spans = v
            .get("spans")
            .and_then(JsonValue::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|d| {
                Ok(SpanDelta {
                    path: str_field(d, "path")?,
                    status: DiffStatus::from_label(&str_field(d, "status")?)
                        .ok_or("bad span status")?,
                    base: stats_of(d.get("base"))?,
                    cand: stats_of(d.get("cand"))?,
                })
            })
            .collect::<Result<_, String>>()?;
        let counters = v
            .get("counters")
            .and_then(JsonValue::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|c| {
                let side = |key: &str| -> Result<Option<u64>, String> {
                    match c.get(key) {
                        None | Some(JsonValue::Null) => Ok(None),
                        Some(x) => Ok(Some(u64_of(x).ok_or("counter side is not a u64")?)),
                    }
                };
                Ok(CounterDelta {
                    name: str_field(c, "name")?,
                    base: side("base")?,
                    cand: side("cand")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let convergence = v
            .get("convergence")
            .and_then(JsonValue::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|c| {
                let f = |key: &str| -> Result<f64, String> {
                    c.get(key)
                        .and_then(|x| x.as_f64())
                        .ok_or_else(|| format!("missing/non-numeric field {key:?}"))
                };
                Ok(ConvergenceDelta {
                    engine: str_field(c, "engine")?,
                    base_iterations: u64_field(c, "base_iterations")?,
                    cand_iterations: u64_field(c, "cand_iterations")?,
                    base_cg: u64_field(c, "base_cg")?,
                    cand_cg: u64_field(c, "cand_cg")?,
                    base_final_mu: f("base_final_mu")?,
                    cand_final_mu: f("cand_final_mu")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let work = v.get("work").ok_or("missing work totals")?;
        let depth = v.get("depth").ok_or("missing depth totals")?;
        Ok(ReportDiff {
            baseline: str_field(&v, "baseline")?,
            candidate: str_field(&v, "candidate")?,
            base_work: u64_field(work, "base")?,
            cand_work: u64_field(work, "cand")?,
            base_depth: u64_field(depth, "base")?,
            cand_depth: u64_field(depth, "cand")?,
            spans,
            counters,
            convergence,
        })
    }

    /// Markdown triage: top-`k` regressing spans (self-work ranked),
    /// changed counters, and the convergence aggregates.
    pub fn to_markdown(&self, k: usize) -> String {
        let mut out = format!(
            "### Span-level triage — {} → {}\n\n",
            self.baseline, self.candidate
        );
        out.push_str(&format!(
            "charged work {} → {} ({:+}), charged depth {} → {} ({:+})\n\n",
            self.base_work,
            self.cand_work,
            self.cand_work as i64 - self.base_work as i64,
            self.base_depth,
            self.cand_depth,
            self.cand_depth as i64 - self.base_depth as i64,
        ));
        let ranked = self.ranked(k);
        if ranked.is_empty() {
            out.push_str("no span regressed on any axis.\n");
        } else {
            out.push_str(
                "| rank | span path | status | Δwork (self) | Δwork | Δdepth | Δwall | Δcalls |\n",
            );
            out.push_str("|---|---|---|---:|---:|---:|---:|---:|\n");
            for (i, d) in ranked.iter().enumerate() {
                out.push_str(&format!(
                    "| {} | {} | {} | {:+} | {:+} | {:+} | {:+.3}ms | {:+} |\n",
                    i + 1,
                    d.path,
                    d.status.label(),
                    d.d_self_work(),
                    d.d_work(),
                    d.d_depth(),
                    d.d_wall_ns() as f64 / 1e6,
                    d.d_count(),
                ));
            }
        }
        let changed: Vec<&CounterDelta> = self.counters.iter().filter(|c| c.delta() != 0).collect();
        if !changed.is_empty() {
            out.push_str("\n| counter | baseline | candidate | Δ |\n|---|---:|---:|---:|\n");
            for c in &changed {
                let opt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "—".into());
                out.push_str(&format!(
                    "| {} | {} | {} | {:+} |\n",
                    c.name,
                    opt(c.base),
                    opt(c.cand),
                    c.delta()
                ));
            }
        }
        if !self.convergence.is_empty() {
            out.push_str(
                "\n| engine | iterations | CG iterations | final μ |\n|---|---|---|---|\n",
            );
            for c in &self.convergence {
                out.push_str(&format!(
                    "| {} | {} → {} | {} → {} | {:.3e} → {:.3e} |\n",
                    c.engine,
                    c.base_iterations,
                    c.cand_iterations,
                    c.base_cg,
                    c.cand_cg,
                    c.base_final_mu,
                    c.cand_final_mu,
                ));
            }
        }
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::IpmIterRow;

    fn span(name: &str, work: u64, depth: u64, children: Vec<ReportSpan>) -> ReportSpan {
        ReportSpan {
            name: name.to_string(),
            work,
            depth,
            wall_ns: work * 10,
            count: 1,
            children,
        }
    }

    fn report(name: &str, spans: Vec<ReportSpan>) -> RunReport {
        let mut r = RunReport::new(name);
        r.work = spans.iter().map(|s| s.work).sum();
        r.depth = spans.iter().map(|s| s.depth).sum();
        r.spans = spans;
        r
    }

    #[test]
    fn identical_reports_have_zero_deltas() {
        let a = report(
            "a",
            vec![span(
                "ipm/loop",
                100,
                20,
                vec![span("ipm/newton", 60, 10, vec![])],
            )],
        );
        let d = diff_reports(&a, &a);
        assert!(d.charged_costs_identical());
        assert!(d.charged_cost_violations().is_empty());
        assert!(d.ranked(10).is_empty());
        assert_eq!(d.spans.len(), 2);
        assert!(d.spans.iter().all(|s| s.status == DiffStatus::Kept));
    }

    #[test]
    fn inflated_leaf_ranks_first_not_its_ancestor() {
        // Inflating a leaf's charged work inflates every ancestor's
        // *inclusive* work by the same amount; self-work ranking must
        // name the leaf.
        let base = report(
            "base",
            vec![span(
                "ipm/loop",
                1000,
                50,
                vec![span(
                    "ipm/newton",
                    600,
                    30,
                    vec![span("solve", 500, 20, vec![])],
                )],
            )],
        );
        let cand = report(
            "cand",
            vec![span(
                "ipm/loop",
                1400,
                50,
                vec![span(
                    "ipm/newton",
                    1000,
                    30,
                    vec![span("solve", 900, 20, vec![])],
                )],
            )],
        );
        let d = diff_reports(&base, &cand);
        assert!(!d.charged_costs_identical());
        let ranked = d.ranked(3);
        assert_eq!(
            ranked[0].path,
            format!("ipm/loop{PATH_SEP}ipm/newton{PATH_SEP}solve")
        );
        assert_eq!(ranked[0].d_self_work(), 400);
        // ancestors regressed inclusively but not exclusively
        assert!(ranked.iter().skip(1).all(|s| s.d_self_work() == 0));
        let md = d.to_markdown(3);
        assert!(md.contains("| 1 | ipm/loop > ipm/newton > solve |"), "{md}");
    }

    #[test]
    fn added_and_removed_spans_are_flagged() {
        let base = report(
            "base",
            vec![span("a", 10, 1, vec![]), span("b", 5, 1, vec![])],
        );
        let cand = report(
            "cand",
            vec![span("a", 10, 1, vec![]), span("c", 7, 2, vec![])],
        );
        let d = diff_reports(&base, &cand);
        assert!(!d.charged_costs_identical());
        let by_path = |p: &str| d.spans.iter().find(|s| s.path == p).unwrap();
        assert_eq!(by_path("a").status, DiffStatus::Kept);
        assert_eq!(by_path("b").status, DiffStatus::Removed);
        assert_eq!(by_path("c").status, DiffStatus::Added);
        assert_eq!(by_path("b").d_work(), -5);
        assert_eq!(by_path("c").d_work(), 7);
        // every span from either run appears exactly once
        assert_eq!(d.spans.len(), 3);
    }

    #[test]
    fn counters_and_convergence_diff() {
        let mut base = report("base", vec![]);
        base.counters.insert("pmcf.alloc.fresh".into(), 10);
        base.counters
            .insert("solver.cg_iterations_total".into(), 100);
        base.convergence.push(IpmIterRow {
            engine: "robust".into(),
            iteration: 1,
            mu: 8.0,
            gap: 16.0,
            step: Some(0.5),
            cg_iters: 100,
            wall_ns: 5,
        });
        let mut cand = report("cand", vec![]);
        cand.counters.insert("pmcf.alloc.fresh".into(), 2);
        cand.counters.insert("pmcf.alloc.reuse".into(), 8);
        cand.convergence.push(IpmIterRow {
            engine: "robust".into(),
            iteration: 1,
            mu: 8.0,
            gap: 16.0,
            step: Some(0.5),
            cg_iters: 60,
            wall_ns: 4,
        });
        cand.convergence.push(IpmIterRow {
            engine: "robust".into(),
            iteration: 2,
            mu: 4.0,
            gap: 8.0,
            step: Some(0.5),
            cg_iters: 50,
            wall_ns: 4,
        });
        let d = diff_reports(&base, &cand);
        let fresh = d
            .counters
            .iter()
            .find(|c| c.name == "pmcf.alloc.fresh")
            .unwrap();
        assert_eq!(fresh.delta(), -8);
        let reuse = d
            .counters
            .iter()
            .find(|c| c.name == "pmcf.alloc.reuse")
            .unwrap();
        assert_eq!((reuse.base, reuse.cand), (None, Some(8)));
        let gone = d
            .counters
            .iter()
            .find(|c| c.name == "solver.cg_iterations_total")
            .unwrap();
        assert_eq!((gone.base, gone.cand), (Some(100), None));
        let conv = &d.convergence[0];
        assert_eq!(conv.engine, "robust");
        assert_eq!((conv.base_iterations, conv.cand_iterations), (1, 2));
        assert_eq!((conv.base_cg, conv.cand_cg), (100, 110));
        assert_eq!(conv.cand_final_mu, 4.0);
    }

    #[test]
    fn json_round_trips_exactly() {
        let base = report(
            "base",
            vec![span(
                "ipm/loop",
                100,
                20,
                vec![span("ipm/newton", 60, 10, vec![])],
            )],
        );
        let mut cand = report(
            "cand",
            vec![span(
                "ipm/loop",
                140,
                20,
                vec![span("extra", 10, 5, vec![])],
            )],
        );
        cand.counters.insert("k".into(), 3);
        let d = diff_reports(&base, &cand);
        let json = d.to_json();
        assert!(json.starts_with("{\"schema\":\"pmcf.reportdiff/v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let back = ReportDiff::from_json(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(ReportDiff::from_json(r#"{"schema":"pmcf.report/v1"}"#).is_err());
        assert!(ReportDiff::from_json("[]").is_err());
    }
}
