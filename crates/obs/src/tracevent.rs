//! Chrome trace-event exporter (`PMCF_TRACE`).
//!
//! Turns the rayon shim's wall-clock pool telemetry — per-thread busy
//! slices, fork/join/steal counters — plus named annotation spans from
//! the solver layers into a single Chrome trace-event JSON file that
//! loads directly in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!
//! Set `PMCF_TRACE=1` (default path `pmcf-trace.json`) or
//! `PMCF_TRACE=<path>` before running an instrumented binary. The bench
//! bins call [`trace_init_from_env`] at startup and [`trace_finish`] on
//! exit; library code marks interesting regions with [`trace_scope`],
//! which is a no-op (one relaxed atomic load) unless tracing is active.
//!
//! Annotations and pool slices share a timeline: both are timestamped
//! via [`rayon::telemetry::now_ns`] against the same process-global
//! epoch, and annotations recorded on a pool worker carry that worker's
//! dense thread id, so a `solve/newton` span drawn on thread 3 sits
//! directly above the `worker` slices thread 3 executed inside it.
//!
//! The file is the standard trace-event "JSON object format":
//!
//! ```json
//! {"traceEvents": [
//!    {"ph":"M","name":"thread_name", ...},
//!    {"ph":"X","name":"worker","ts":12.5,"dur":3.0,"pid":1,"tid":2}
//!  ],
//!  "displayTimeUnit": "ms",
//!  "otherData": {"schema":"pmcf.trace/v1", "joins":…, "steals":…,
//!                "imbalance_ratio":…}}
//! ```
//!
//! `ts`/`dur` are microseconds (fractional — nanosecond precision is
//! preserved). `otherData.schema` marks the file as ours for the CI
//! smoke check; Perfetto ignores unknown keys.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use pmcf_pram::profile::json_string;
use rayon::telemetry::{self, PoolTelemetry};

/// Environment variable that switches the trace exporter on.
pub const TRACE_ENV: &str = "PMCF_TRACE";
/// Path written when `PMCF_TRACE` is merely truthy rather than a path.
pub const DEFAULT_TRACE_PATH: &str = "pmcf-trace.json";
/// Schema tag stored under `otherData.schema`.
pub const TRACE_SCHEMA: &str = "pmcf.trace/v1";
/// Maximum annotation spans retained per trace (overflow is counted).
pub const ANNOTATION_CAP: usize = 1 << 16;

static ANNOTATING: AtomicBool = AtomicBool::new(false);

/// One named span recorded by [`trace_scope`].
#[derive(Clone, Debug)]
pub struct Annotation {
    /// Span name, e.g. `"ipm/newton"`.
    pub name: String,
    /// Dense thread id from [`rayon::telemetry::current_tid`].
    pub tid: usize,
    /// Start, nanoseconds since the shared telemetry epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the shared telemetry epoch.
    pub end_ns: u64,
}

#[derive(Default)]
struct AnnotationStore {
    spans: Vec<Annotation>,
    dropped: u64,
    /// Output path captured by [`trace_init_from_env`].
    path: Option<String>,
}

static ANNOTATIONS: Mutex<AnnotationStore> = Mutex::new(AnnotationStore {
    spans: Vec::new(),
    dropped: 0,
    path: None,
});

fn annotations() -> std::sync::MutexGuard<'static, AnnotationStore> {
    ANNOTATIONS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resolve `PMCF_TRACE` to an output path: unset/`0`/`false`/`off` →
/// `None`; `1`/`true`/`on` → [`DEFAULT_TRACE_PATH`]; anything else is
/// taken as the path itself.
pub fn trace_path_from_env() -> Option<String> {
    let raw = std::env::var(TRACE_ENV).ok()?;
    let v = raw.trim();
    match v.to_ascii_lowercase().as_str() {
        "" | "0" | "false" | "off" => None,
        "1" | "true" | "on" => Some(DEFAULT_TRACE_PATH.to_string()),
        _ => Some(v.to_string()),
    }
}

/// Whether annotation recording is currently active.
#[inline]
pub fn tracing_active() -> bool {
    ANNOTATING.load(Ordering::Relaxed)
}

/// RAII guard returned by [`trace_scope`]; records the span on drop.
pub struct TraceScope {
    name: Option<String>,
    start_ns: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else { return };
        let end_ns = telemetry::now_ns();
        let tid = telemetry::current_tid();
        let mut st = annotations();
        if st.spans.len() < ANNOTATION_CAP {
            st.spans.push(Annotation {
                name,
                tid,
                start_ns: self.start_ns,
                end_ns,
            });
        } else {
            st.dropped += 1;
        }
    }
}

/// Mark a named region for the trace timeline. Free when tracing is
/// off; the returned guard records `[enter, drop]` when it is on.
#[inline]
pub fn trace_scope(name: &str) -> TraceScope {
    if !tracing_active() {
        return TraceScope {
            name: None,
            start_ns: 0,
        };
    }
    TraceScope {
        name: Some(name.to_string()),
        start_ns: telemetry::now_ns(),
    }
}

/// Start tracing manually (used by tests; binaries use
/// [`trace_init_from_env`]). Clears previous annotations and resets the
/// pool's slice buffer so the trace covers exactly one run.
pub fn trace_start(path: Option<String>) {
    telemetry::reset();
    telemetry::set_recording(true);
    let mut st = annotations();
    st.spans.clear();
    st.dropped = 0;
    st.path = path;
    drop(st);
    ANNOTATING.store(true, Ordering::Relaxed);
}

/// Start tracing if `PMCF_TRACE` requests it; returns whether tracing
/// is now active.
pub fn trace_init_from_env() -> bool {
    match trace_path_from_env() {
        Some(path) => {
            trace_start(Some(path));
            true
        }
        None => false,
    }
}

/// Stop tracing, render the trace, and write it to the path captured at
/// init (if any). Returns the rendered JSON when tracing was active.
pub fn trace_finish() -> Option<String> {
    if !tracing_active() {
        return None;
    }
    ANNOTATING.store(false, Ordering::Relaxed);
    telemetry::set_recording(false);
    let pool = telemetry::snapshot();
    let mut st = annotations();
    let spans = std::mem::take(&mut st.spans);
    let dropped = st.dropped;
    let path = st.path.take();
    drop(st);
    let json = render_trace(&pool, &spans, dropped);
    if let Some(path) = path {
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!(
                "[pmcf-obs] wrote trace: {} ({} pool slices, {} annotations)",
                path,
                pool.slices.len(),
                spans.len()
            ),
            Err(e) => eprintln!("[pmcf-obs] failed to write trace {path}: {e}"),
        }
    }
    Some(json)
}

fn push_us(out: &mut String, ns: u64) {
    // µs with nanosecond precision; trims to integer when exact.
    if ns.is_multiple_of(1_000) {
        out.push_str(&(ns / 1_000).to_string());
    } else {
        out.push_str(&format!("{:.3}", ns as f64 / 1_000.0));
    }
}

fn push_complete_event(out: &mut String, name: &str, tid: usize, start_ns: u64, end_ns: u64) {
    out.push_str("{\"name\":");
    out.push_str(&json_string(name));
    out.push_str(",\"ph\":\"X\",\"ts\":");
    push_us(out, start_ns);
    out.push_str(",\"dur\":");
    push_us(out, end_ns.saturating_sub(start_ns));
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&tid.to_string());
    out.push('}');
}

/// Render pool telemetry plus annotation spans as a Chrome trace-event
/// JSON document (see module docs for the layout).
pub fn render_trace(pool: &PoolTelemetry, spans: &[Annotation], dropped_spans: u64) -> String {
    let mut out = String::with_capacity(256 + 96 * (pool.slices.len() + spans.len()));
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    // Thread-name metadata: give every dense tid a readable lane label.
    let lanes = pool
        .thread_names
        .len()
        .max(spans.iter().map(|s| s.tid + 1).max().unwrap_or(0));
    for tid in 0..lanes {
        let label = match pool.thread_names.get(tid).and_then(|n| n.as_deref()) {
            Some(name) => name.to_string(),
            None if tid == 0 => "main".to_string(),
            None => format!("thread-{tid}"),
        };
        sep(&mut out);
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"args\":{\"name\":");
        out.push_str(&json_string(&label));
        out.push_str("}}");
    }
    for a in spans {
        sep(&mut out);
        push_complete_event(&mut out, &a.name, a.tid, a.start_ns, a.end_ns);
    }
    for s in &pool.slices {
        sep(&mut out);
        push_complete_event(&mut out, s.kind.label(), s.tid, s.start_ns, s.end_ns);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"schema\":{},\"threads\":{},\"joins\":{},\"batches\":{},\"jobs_queued\":{},\
         \"jobs_inline\":{},\"steals\":{},\"pool_slices\":{},\"dropped_slices\":{},\
         \"annotations\":{},\"dropped_annotations\":{},\"total_busy_ns\":{},\
         \"imbalance_ratio\":{:.4}",
        json_string(TRACE_SCHEMA),
        pool.threads,
        pool.joins,
        pool.batches,
        pool.jobs_queued,
        pool.jobs_inline,
        pool.steals,
        pool.slices.len(),
        pool.dropped_slices,
        spans.len(),
        dropped_spans,
        pool.total_busy_ns(),
        pool.imbalance_ratio(),
    ));
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, JsonValue};

    /// Tracing state is process-global; serialize tests that flip it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn scope_is_noop_when_inactive() {
        let _g = lock();
        ANNOTATING.store(false, Ordering::Relaxed);
        let before = annotations().spans.len();
        drop(trace_scope("ignored"));
        assert_eq!(annotations().spans.len(), before);
    }

    #[test]
    fn trace_round_trips_through_json_reader() {
        let _g = lock();
        trace_start(None);
        {
            let _outer = trace_scope("ipm/loop");
            let _inner = trace_scope("ipm/newton");
        }
        rayon::join(|| (), || ());
        let json = trace_finish().expect("tracing was active");
        let v = json::parse(&json).expect("exporter must emit valid JSON");
        assert_eq!(
            v.get("otherData").unwrap().get("schema").unwrap().as_str(),
            Some(TRACE_SCHEMA)
        );
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let mut metadata = 0;
        let mut complete = 0;
        let mut names = Vec::new();
        for e in events {
            match e.get("ph").and_then(JsonValue::as_str) {
                Some("M") => {
                    metadata += 1;
                    assert_eq!(
                        e.get("name").and_then(JsonValue::as_str),
                        Some("thread_name")
                    );
                }
                Some("X") => {
                    complete += 1;
                    assert!(e.get("ts").unwrap().as_f64().is_some());
                    assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
                    assert!(e.get("tid").unwrap().as_f64().is_some());
                    names.push(e.get("name").unwrap().as_str().unwrap().to_string());
                }
                other => panic!("unexpected ph {other:?}"),
            }
        }
        assert!(metadata >= 1, "every lane needs a thread_name event");
        assert!(complete >= 2);
        assert!(names.iter().any(|n| n == "ipm/loop"));
        assert!(names.iter().any(|n| n == "ipm/newton"));
        let other = v.get("otherData").unwrap();
        assert!(other.get("joins").unwrap().as_f64().unwrap() >= 1.0);
        assert_eq!(
            other.get("annotations").unwrap().as_f64(),
            Some(names.iter().filter(|n| n.starts_with("ipm/")).count() as f64)
        );
    }

    #[test]
    fn env_value_parsing() {
        // trace_path_from_env reads the real environment, so test the
        // mapping through a copy of its match logic via trace_start paths.
        for (val, want) in [
            ("1", Some(DEFAULT_TRACE_PATH.to_string())),
            ("true", Some(DEFAULT_TRACE_PATH.to_string())),
            ("on", Some(DEFAULT_TRACE_PATH.to_string())),
            ("0", None),
            ("false", None),
            ("off", None),
            ("", None),
            ("out/custom.json", Some("out/custom.json".to_string())),
        ] {
            let got = match val.trim().to_ascii_lowercase().as_str() {
                "" | "0" | "false" | "off" => None,
                "1" | "true" | "on" => Some(DEFAULT_TRACE_PATH.to_string()),
                _ => Some(val.trim().to_string()),
            };
            assert_eq!(got, want, "value {val:?}");
        }
    }

    #[test]
    fn timestamps_are_microseconds() {
        let mut s = String::new();
        push_us(&mut s, 2_000);
        assert_eq!(s, "2");
        s.clear();
        push_us(&mut s, 1_500);
        assert_eq!(s, "1.500");
    }
}
