//! Property tests for the flight recorder and invariant monitors.
//!
//! Two properties the ISSUE pins down:
//! - the ring buffer never drops the *latest* events (only the oldest);
//! - monitor verdicts are deterministic under replay of the same seed.

use pmcf_obs::event::{Event, Value};
use pmcf_obs::json::parse_recording;
use pmcf_obs::monitor::run_monitors;
use pmcf_obs::FlightRecorder;
use pmcf_pram::profile::{ProfileReport, SpanReport};
use pmcf_pram::{Cost, ParMode, Tracker};
use proptest::prelude::*;

fn push_n(rec: &mut FlightRecorder, n: u64) {
    for i in 0..n {
        rec.push(Event::new("e", vec![("i", Value::U64(i))]));
    }
}

/// Build a synthetic recording from a seed: a solve with a decreasing
/// (or occasionally violated) μ-schedule plus expander maintenance.
fn synthetic_events(seed: u64, violate_mu: bool) -> Vec<Event> {
    let mut events = Vec::new();
    let n = 16 + seed % 64;
    events.push(Event::new(
        "solve.start",
        vec![
            ("engine", Value::Str("reference".into())),
            ("n", Value::U64(n)),
            ("m", Value::U64(n * n)),
            ("mu0", Value::F64(100.0)),
            ("mu_end", Value::F64(1e-3)),
            ("step_r", Value::F64(0.5)),
            ("gamma", Value::F64(0.25)),
            ("envelope_c", Value::F64(3.0)),
        ],
    ));
    let mut mu = 100.0f64;
    let mut work = 0.0f64;
    let iters = 5 + (seed % 20);
    for it in 0..iters {
        mu *= 0.8;
        if violate_mu && it == iters / 2 {
            mu *= 2.0; // inject a μ rise mid-solve
        }
        work += 100.0 + (seed.wrapping_mul(it + 1) % 50) as f64;
        events.push(Event::new(
            "ipm.iter",
            vec![
                ("iteration", Value::U64(it)),
                ("mu", Value::F64(mu)),
                ("work", Value::F64(work)),
                ("depth", Value::F64(work / 10.0)),
            ],
        ));
    }
    events.push(Event::new(
        "expander.rebuild",
        vec![
            ("edges", Value::U64(n)),
            ("phi", Value::F64(0.1)),
            ("certified", Value::Bool(true)),
        ],
    ));
    events.push(Event::new(
        "solve.end",
        vec![
            ("iterations", Value::U64(iters)),
            ("work", Value::F64(work + 1.0)),
            ("depth", Value::F64(work / 10.0 + 1.0)),
            ("final_mu", Value::F64(mu)),
        ],
    ));
    events
}

/// A profiled solve-shaped run whose branches execute through the thread
/// pool (`ParMode::Forked` exercises the merge path even on one core).
fn forked_profile(seed: u64, branches: usize) -> ProfileReport {
    let mut t = Tracker::profiled();
    t.span("solve", |t| {
        t.counter("solver.solves", 1);
        t.parallel_in(ParMode::Forked, branches, |i, t| {
            t.span("cg", |t| {
                let iters = 1 + (seed.wrapping_add(i as u64 * 7)) % 23;
                t.charge(Cost::par_for(iters, Cost::par_flat(64)));
                t.counter("solver.cg_iterations_total", iters);
                t.observe("solver.cg_iterations", iters);
            });
        });
    });
    t.profile_report().expect("profiled tracker reports")
}

/// Span-tree equality ignoring wall time (the only nondeterministic field).
fn assert_spans_replay_eq(a: &[SpanReport], b: &[SpanReport]) {
    assert_eq!(a.len(), b.len(), "span count differs under replay");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.work, y.work, "span {}: work differs", x.name);
        assert_eq!(x.depth, y.depth, "span {}: depth differs", x.name);
        assert_eq!(x.count, y.count, "span {}: count differs", x.name);
        assert_spans_replay_eq(&x.children, &y.children);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_never_drops_latest(cap in 1usize..40, n in 0u64..200) {
        let mut rec = FlightRecorder::new(cap);
        push_n(&mut rec, n);
        // retained = the suffix of the emitted sequence
        let retained: Vec<u64> = rec.events().map(|e| e.seq).collect();
        let expect_len = (n as usize).min(cap);
        prop_assert_eq!(retained.len(), expect_len);
        prop_assert_eq!(rec.dropped(), n - expect_len as u64);
        if expect_len > 0 {
            // the newest event is always present, and seqs are the
            // contiguous tail [n - len, n)
            prop_assert_eq!(*retained.last().unwrap(), n - 1);
            let tail: Vec<u64> = (n - expect_len as u64..n).collect();
            prop_assert_eq!(retained, tail);
        }
    }

    #[test]
    fn ring_survives_jsonl_round_trip(cap in 1usize..20, n in 1u64..60) {
        let mut rec = FlightRecorder::new(cap);
        push_n(&mut rec, n);
        let (events, dropped) = parse_recording(&rec.to_jsonl()).unwrap();
        prop_assert_eq!(dropped, rec.dropped());
        prop_assert_eq!(events.len(), rec.len());
        prop_assert_eq!(events.last().map(|e| e.seq), Some(n - 1));
    }

    #[test]
    fn monitor_verdicts_deterministic_under_replay(seed in 0u64..10_000, violate in any::<bool>()) {
        let events = synthetic_events(seed, violate);
        let first = run_monitors(&events);
        // replay 1: same seed, fresh events
        let second = run_monitors(&synthetic_events(seed, violate));
        prop_assert_eq!(&first, &second);
        // replay 2: through the JSONL serialization
        let mut rec = FlightRecorder::new(4096);
        for e in &events {
            rec.push(e.clone());
        }
        let (parsed, _) = parse_recording(&rec.to_jsonl()).unwrap();
        let third = run_monitors(&parsed);
        for (a, b) in first.iter().zip(third.iter()) {
            prop_assert_eq!(&a.monitor, &b.monitor);
            prop_assert_eq!(a.ok, b.ok);
            prop_assert_eq!(a.checked, b.checked);
        }
        // and the verdict matches the injected fault
        let mu = first.iter().find(|v| v.monitor == "mu-monotone").unwrap();
        prop_assert_eq!(mu.ok, !violate);
    }

    #[test]
    fn span_trees_deterministic_under_forked_replay(seed in 0u64..10_000, branches in 0usize..6) {
        // Pool scheduling must not leak into the profile: replaying the
        // same program through Forked branches yields the same span tree,
        // counters, and histogram shape — wall time is the only field
        // allowed to differ between runs.
        let a = forked_profile(seed, branches);
        let b = forked_profile(seed, branches);
        prop_assert_eq!(a.work, b.work);
        prop_assert_eq!(a.depth, b.depth);
        assert_spans_replay_eq(&a.spans, &b.spans);
        prop_assert_eq!(&a.counters, &b.counters);
        prop_assert_eq!(
            a.histograms.keys().collect::<Vec<_>>(),
            b.histograms.keys().collect::<Vec<_>>()
        );
        for (name, h) in &a.histograms {
            let o = &b.histograms[name];
            prop_assert_eq!(h.count, o.count, "histogram {}: count", name);
            prop_assert_eq!(h.sum, o.sum, "histogram {}: sum", name);
            prop_assert_eq!(&h.buckets, &o.buckets, "histogram {}: buckets", name);
        }
    }
}
