//! Property tests for the flight recorder, invariant monitors, and the
//! run-report diff engine.
//!
//! Pinned properties:
//! - the ring buffer never drops the *latest* events (only the oldest);
//! - monitor verdicts are deterministic under replay of the same seed;
//! - span-tree diff alignment is *total* (every span path in either run
//!   appears exactly once, as kept/added/removed) and delta-exact.

use pmcf_obs::event::{Event, Value};
use pmcf_obs::json::parse_recording;
use pmcf_obs::monitor::run_monitors;
use pmcf_obs::report::ReportSpan;
use pmcf_obs::{diff_reports, DiffStatus, FlightRecorder, RunReport};
use pmcf_pram::profile::{ProfileReport, SpanReport};
use pmcf_pram::{Cost, ParMode, Tracker};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn push_n(rec: &mut FlightRecorder, n: u64) {
    for i in 0..n {
        rec.push(Event::new("e", vec![("i", Value::U64(i))]));
    }
}

/// Build a synthetic recording from a seed: a solve with a decreasing
/// (or occasionally violated) μ-schedule plus expander maintenance.
fn synthetic_events(seed: u64, violate_mu: bool) -> Vec<Event> {
    let mut events = Vec::new();
    let n = 16 + seed % 64;
    events.push(Event::new(
        "solve.start",
        vec![
            ("engine", Value::Str("reference".into())),
            ("n", Value::U64(n)),
            ("m", Value::U64(n * n)),
            ("mu0", Value::F64(100.0)),
            ("mu_end", Value::F64(1e-3)),
            ("step_r", Value::F64(0.5)),
            ("gamma", Value::F64(0.25)),
            ("envelope_c", Value::F64(3.0)),
        ],
    ));
    let mut mu = 100.0f64;
    let mut work = 0.0f64;
    let iters = 5 + (seed % 20);
    for it in 0..iters {
        mu *= 0.8;
        if violate_mu && it == iters / 2 {
            mu *= 2.0; // inject a μ rise mid-solve
        }
        work += 100.0 + (seed.wrapping_mul(it + 1) % 50) as f64;
        events.push(Event::new(
            "ipm.iter",
            vec![
                ("iteration", Value::U64(it)),
                ("mu", Value::F64(mu)),
                ("work", Value::F64(work)),
                ("depth", Value::F64(work / 10.0)),
            ],
        ));
    }
    events.push(Event::new(
        "expander.rebuild",
        vec![
            ("edges", Value::U64(n)),
            ("phi", Value::F64(0.1)),
            ("certified", Value::Bool(true)),
        ],
    ));
    events.push(Event::new(
        "solve.end",
        vec![
            ("iterations", Value::U64(iters)),
            ("work", Value::F64(work + 1.0)),
            ("depth", Value::F64(work / 10.0 + 1.0)),
            ("final_mu", Value::F64(mu)),
        ],
    ));
    events
}

/// A profiled solve-shaped run whose branches execute through the thread
/// pool (`ParMode::Forked` exercises the merge path even on one core).
fn forked_profile(seed: u64, branches: usize) -> ProfileReport {
    let mut t = Tracker::profiled();
    t.span("solve", |t| {
        t.counter("solver.solves", 1);
        t.parallel_in(ParMode::Forked, branches, |i, t| {
            t.span("cg", |t| {
                let iters = 1 + (seed.wrapping_add(i as u64 * 7)) % 23;
                t.charge(Cost::par_for(iters, Cost::par_flat(64)));
                t.counter("solver.cg_iterations_total", iters);
                t.observe("solver.cg_iterations", iters);
            });
        });
    });
    t.profile_report().expect("profiled tracker reports")
}

/// Span-tree equality ignoring wall time (the only nondeterministic field).
fn assert_spans_replay_eq(a: &[SpanReport], b: &[SpanReport]) {
    assert_eq!(a.len(), b.len(), "span count differs under replay");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.work, y.work, "span {}: work differs", x.name);
        assert_eq!(x.depth, y.depth, "span {}: depth differs", x.name);
        assert_eq!(x.count, y.count, "span {}: count differs", x.name);
        assert_spans_replay_eq(&x.children, &y.children);
    }
}

/// Small name alphabet so randomly generated base/candidate trees share,
/// add, and remove paths with high probability.
const SPAN_NAMES: [&str; 5] = ["ipm", "cg", "expander", "solve", "trim"];

/// xorshift step for the seed-driven tree generator below.
fn next(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x
}

/// Random span tree with *consistent inclusive costs* (parent ≥ sum of
/// children), matching what the profiler produces. Seed-driven because
/// the in-tree proptest shim has no recursive strategy combinator.
fn gen_span(rng: &mut u64, depth: usize) -> ReportSpan {
    let kids = if depth == 0 {
        0
    } else {
        (next(rng) % 4) as usize
    };
    let children: Vec<ReportSpan> = (0..kids).map(|_| gen_span(rng, depth - 1)).collect();
    let cw: u64 = children.iter().map(|c| c.work).sum();
    let cd: u64 = children.iter().map(|c| c.depth).sum();
    let cn: u64 = children.iter().map(|c| c.wall_ns).sum();
    ReportSpan {
        name: SPAN_NAMES[(next(rng) % SPAN_NAMES.len() as u64) as usize].to_string(),
        work: next(rng) % 1_000 + cw,
        depth: next(rng) % 100 + cd,
        wall_ns: next(rng) % 10_000 + cn,
        count: 1 + next(rng) % 3,
        children,
    }
}

fn gen_spans(seed: u64) -> Vec<ReportSpan> {
    let mut rng = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..(next(&mut rng) % 4) as usize)
        .map(|_| gen_span(&mut rng, 3))
        .collect()
}

fn report_with(spans: Vec<ReportSpan>) -> RunReport {
    let mut r = RunReport::new("prop");
    r.work = spans.iter().map(|s| s.work).sum();
    r.depth = spans.iter().map(|s| s.depth).sum();
    r.spans = spans;
    r
}

/// Independent re-implementation of path flattening used as the oracle:
/// `(inclusive work, inclusive depth, self work)` per ` > `-joined path,
/// aggregating duplicate paths.
fn flat_oracle(spans: &[ReportSpan], prefix: &str, out: &mut BTreeMap<String, [u64; 3]>) {
    for s in spans {
        let path = if prefix.is_empty() {
            s.name.clone()
        } else {
            format!("{prefix} > {}", s.name)
        };
        let e = out.entry(path.clone()).or_insert([0; 3]);
        e[0] += s.work;
        e[1] += s.depth;
        e[2] += s.self_work();
        flat_oracle(&s.children, &path, out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_never_drops_latest(cap in 1usize..40, n in 0u64..200) {
        let mut rec = FlightRecorder::new(cap);
        push_n(&mut rec, n);
        // retained = the suffix of the emitted sequence
        let retained: Vec<u64> = rec.events().map(|e| e.seq).collect();
        let expect_len = (n as usize).min(cap);
        prop_assert_eq!(retained.len(), expect_len);
        prop_assert_eq!(rec.dropped(), n - expect_len as u64);
        if expect_len > 0 {
            // the newest event is always present, and seqs are the
            // contiguous tail [n - len, n)
            prop_assert_eq!(*retained.last().unwrap(), n - 1);
            let tail: Vec<u64> = (n - expect_len as u64..n).collect();
            prop_assert_eq!(retained, tail);
        }
    }

    #[test]
    fn ring_survives_jsonl_round_trip(cap in 1usize..20, n in 1u64..60) {
        let mut rec = FlightRecorder::new(cap);
        push_n(&mut rec, n);
        let (events, dropped) = parse_recording(&rec.to_jsonl()).unwrap();
        prop_assert_eq!(dropped, rec.dropped());
        prop_assert_eq!(events.len(), rec.len());
        prop_assert_eq!(events.last().map(|e| e.seq), Some(n - 1));
    }

    #[test]
    fn monitor_verdicts_deterministic_under_replay(seed in 0u64..10_000, violate in any::<bool>()) {
        let events = synthetic_events(seed, violate);
        let first = run_monitors(&events);
        // replay 1: same seed, fresh events
        let second = run_monitors(&synthetic_events(seed, violate));
        prop_assert_eq!(&first, &second);
        // replay 2: through the JSONL serialization
        let mut rec = FlightRecorder::new(4096);
        for e in &events {
            rec.push(e.clone());
        }
        let (parsed, _) = parse_recording(&rec.to_jsonl()).unwrap();
        let third = run_monitors(&parsed);
        for (a, b) in first.iter().zip(third.iter()) {
            prop_assert_eq!(&a.monitor, &b.monitor);
            prop_assert_eq!(a.ok, b.ok);
            prop_assert_eq!(a.checked, b.checked);
        }
        // and the verdict matches the injected fault
        let mu = first.iter().find(|v| v.monitor == "mu-monotone").unwrap();
        prop_assert_eq!(mu.ok, !violate);
    }

    #[test]
    fn span_diff_alignment_is_total_and_delta_exact(
        base_seed in 0u64..1_000_000,
        cand_seed in 0u64..1_000_000,
    ) {
        let base = report_with(gen_spans(base_seed));
        let cand = report_with(gen_spans(cand_seed));
        let mut base_flat = BTreeMap::new();
        let mut cand_flat = BTreeMap::new();
        flat_oracle(&base.spans, "", &mut base_flat);
        flat_oracle(&cand.spans, "", &mut cand_flat);

        let diff = diff_reports(&base, &cand);

        // totality: every path from either run appears exactly once
        let mut seen = std::collections::BTreeSet::new();
        for d in &diff.spans {
            prop_assert!(seen.insert(d.path.clone()), "duplicate path {}", d.path);
        }
        let union: std::collections::BTreeSet<String> =
            base_flat.keys().chain(cand_flat.keys()).cloned().collect();
        prop_assert_eq!(&seen, &union);

        for d in &diff.spans {
            let b = base_flat.get(&d.path);
            let c = cand_flat.get(&d.path);
            // status matches which side(s) hold the path
            let want = match (b.is_some(), c.is_some()) {
                (true, true) => DiffStatus::Kept,
                (false, true) => DiffStatus::Added,
                (true, false) => DiffStatus::Removed,
                (false, false) => unreachable!("path {} in neither run", d.path),
            };
            prop_assert_eq!(d.status, want, "path {}", d.path);
            // deltas are exact: candidate minus baseline, missing side = 0
            let bv = b.copied().unwrap_or([0; 3]);
            let cv = c.copied().unwrap_or([0; 3]);
            prop_assert_eq!(d.d_work(), cv[0] as i64 - bv[0] as i64, "path {}", d.path);
            prop_assert_eq!(d.d_depth(), cv[1] as i64 - bv[1] as i64, "path {}", d.path);
            prop_assert_eq!(d.d_self_work(), cv[2] as i64 - bv[2] as i64, "path {}", d.path);
        }

        // a self-diff reports identical charged costs
        let self_diff = diff_reports(&base, &base);
        prop_assert!(self_diff.charged_costs_identical());
    }

    #[test]
    fn span_trees_deterministic_under_forked_replay(seed in 0u64..10_000, branches in 0usize..6) {
        // Pool scheduling must not leak into the profile: replaying the
        // same program through Forked branches yields the same span tree,
        // counters, and histogram shape — wall time is the only field
        // allowed to differ between runs.
        let a = forked_profile(seed, branches);
        let b = forked_profile(seed, branches);
        prop_assert_eq!(a.work, b.work);
        prop_assert_eq!(a.depth, b.depth);
        assert_spans_replay_eq(&a.spans, &b.spans);
        prop_assert_eq!(&a.counters, &b.counters);
        prop_assert_eq!(
            a.histograms.keys().collect::<Vec<_>>(),
            b.histograms.keys().collect::<Vec<_>>()
        );
        for (name, h) in &a.histograms {
            let o = &b.histograms[name];
            prop_assert_eq!(h.count, o.count, "histogram {}: count", name);
            prop_assert_eq!(h.sum, o.sum, "histogram {}: sum", name);
            prop_assert_eq!(&h.buckets, &o.buckets, "histogram {}: buckets", name);
        }
    }
}
