//! Machine-readable bench artifacts.
//!
//! Every harness binary accepts `--json <path>` and `--seed <u64>` and,
//! when asked, writes a schema-versioned JSON artifact next to the
//! human-readable markdown it prints. The artifact carries the raw rows
//! of each table, any fitted scaling exponents, the RNG seed, and — when
//! `PMCF_PROFILE=1` — the hierarchical span-tree profile of a designated
//! solve, so external tooling can diff runs without scraping stdout.
//!
//! The JSON is hand-rolled on purpose: the workspace carries no serde
//! dependency, and the value space here (strings, finite floats, u64,
//! bool, flat arrays/objects) doesn't need one.

use pmcf_pram::profile::{json_string, ProfileReport};
use pmcf_pram::Tracker;
use std::path::{Path, PathBuf};

/// Schema identifier stamped into every artifact.
pub const SCHEMA: &str = "pmcf.bench/v1";

/// A JSON value (the tiny subset the artifacts need).
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values serialize as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object (insertion order preserved).
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON embedded verbatim (e.g. a profile report).
    Raw(String),
}

impl Json {
    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:e}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => out.push_str(&json_string(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

/// Command-line arguments shared by every bench binary.
///
/// Layout: one optional positional integer (its meaning is per-binary —
/// usually a size cap), plus `--json <path>` and `--seed <u64>`.
/// `--json -` streams the artifact JSON to stdout and routes all
/// human-readable markdown to stderr, so the harness can be piped
/// straight into `bench-gate`.
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    /// The positional size cap, if given.
    pub max_size: Option<usize>,
    /// Where to write the JSON artifact, if requested.
    pub json: Option<PathBuf>,
    /// `--json -`: stream the artifact to stdout, markdown to stderr.
    pub stream: bool,
    /// RNG seed for instance generation (recorded in the artifact).
    pub seed: Option<u64>,
}

impl BenchArgs {
    /// Parse `std::env::args()`, panicking with a usage message on
    /// malformed input (these are internal harnesses, not a CLI product).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit argument iterator (testable core of
    /// [`BenchArgs::parse`]).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut out = BenchArgs::default();
        let mut args = iter.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => {
                    let p = args.next().expect("--json requires a path or '-'");
                    if p == "-" {
                        out.stream = true;
                    } else {
                        out.json = Some(PathBuf::from(p));
                    }
                }
                "--seed" => {
                    let s = args.next().expect("--seed requires a u64");
                    out.seed = Some(s.parse().expect("--seed requires a u64"));
                }
                other => {
                    let v: usize = other.parse().unwrap_or_else(|_| {
                        panic!("unrecognized argument {other:?} (expected a size, --json <path|->, or --seed <u64>)")
                    });
                    out.max_size = Some(v);
                }
            }
        }
        out
    }

    /// The seed to use: `--seed` if given, else `default`.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The size cap: the positional argument if given, else `default`.
    pub fn max_size_or(&self, default: usize) -> usize {
        self.max_size.unwrap_or(default)
    }

    /// Print one line of markdown: to stderr under `--json -` (keeping
    /// stdout clean for the artifact), to stdout otherwise.
    pub fn md_line(&self, line: &str) {
        if self.stream {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
}

/// `mdln!(args)` / `mdln!(args, "fmt", ...)` — markdown output that
/// respects `--json -` stream routing (see [`BenchArgs::md_line`]).
#[macro_export]
macro_rules! mdln {
    ($args:expr) => {
        $args.md_line("")
    };
    ($args:expr, $($fmt:tt)*) => {
        $args.md_line(&format!($($fmt)*))
    };
}

/// Accumulates one run's results and writes the artifact.
pub struct Artifact {
    bench: String,
    seed: u64,
    rows: Vec<Json>,
    extra: Vec<(String, Json)>,
    profile: Option<String>,
    md_stderr: bool,
}

impl Artifact {
    /// Start an artifact for the named bench with the recorded seed.
    pub fn new(bench: &str, seed: u64) -> Self {
        Artifact {
            bench: bench.to_string(),
            seed,
            rows: Vec::new(),
            extra: Vec::new(),
            profile: None,
            md_stderr: false,
        }
    }

    /// Start an artifact wired to `args`: under `--json -`, any markdown
    /// this artifact prints (profile reports, write notices) goes to
    /// stderr so stdout stays a clean JSON stream.
    pub fn for_run(bench: &str, seed: u64, args: &BenchArgs) -> Self {
        let mut a = Artifact::new(bench, seed);
        a.md_stderr = args.stream;
        a
    }

    fn md_line(&self, line: &str) {
        if self.md_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }

    /// Append a table row (an ordered key → value object).
    pub fn row(&mut self, pairs: Vec<(&str, Json)>) {
        self.rows.push(Json::Obj(
            pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        ));
    }

    /// Attach a top-level key (fitted exponents, sweep metadata, …).
    pub fn set(&mut self, key: &str, value: Json) {
        self.extra.push((key.to_string(), value));
    }

    /// Embed the span-tree profile of `t`, if it carries one (i.e. the
    /// tracker came from [`pmcf_pram::profile::tracker_from_env`] under
    /// `PMCF_PROFILE=1`). Also prints the flamegraph-style markdown
    /// report to stdout. Returns whether a profile was attached.
    pub fn attach_profile(&mut self, label: &str, t: &Tracker) -> bool {
        match t.profile_report() {
            Some(rep) => {
                self.attach_profile_report(label, &rep);
                true
            }
            None => false,
        }
    }

    /// Embed an already-extracted [`ProfileReport`] (and print it).
    pub fn attach_profile_report(&mut self, label: &str, rep: &ProfileReport) {
        self.md_line(&format!("\n### Span profile — {label}\n"));
        self.md_line(&rep.to_markdown());
        self.profile = Some(rep.to_json());
    }

    /// Render the full artifact.
    pub fn to_json(&self) -> String {
        let mut obj: Vec<(String, Json)> = vec![
            ("schema".into(), Json::from(SCHEMA)),
            ("bench".into(), Json::Str(self.bench.clone())),
            ("seed".into(), Json::U64(self.seed)),
        ];
        obj.extend(self.extra.iter().cloned());
        obj.push(("rows".into(), Json::Arr(self.rows.clone())));
        if let Some(p) = &self.profile {
            obj.push(("profile".into(), Json::Raw(p.clone())));
        }
        Json::Obj(obj).render()
    }

    /// Emit the artifact as `args` requested: under `--json -` the JSON
    /// streams to stdout (ready to pipe into `bench-gate`); under
    /// `--json <path>` it is written to the file (creating parent
    /// directories) and the destination is announced; otherwise no-op.
    pub fn emit(&self, args: &BenchArgs) {
        if args.stream {
            println!("{}", self.to_json());
            return;
        }
        self.write_if_requested(&args.json);
    }

    /// Write the artifact to `path` (creating parent directories) if the
    /// caller passed `--json <path>`; no-op otherwise. Prints the
    /// destination.
    pub fn write_if_requested(&self, path: &Option<PathBuf>) {
        if let Some(p) = path {
            self.write(p).expect("artifact write failed");
            self.md_line(&format!("\n[artifact] wrote {}", p.display()));
        }
    }

    /// Write the artifact to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_values_render() {
        let v = Json::Obj(vec![
            ("a".into(), Json::U64(3)),
            ("b".into(), Json::Arr(vec![Json::F64(1.5), Json::Null])),
            ("c".into(), Json::Str("x\"y".into())),
            ("d".into(), Json::Bool(true)),
        ]);
        assert_eq!(
            v.render(),
            r#"{"a":3,"b":[1.5e0,null],"c":"x\"y","d":true}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn artifact_shape_is_schema_versioned() {
        let mut a = Artifact::new("demo", 9);
        a.row(vec![
            ("n", Json::from(4usize)),
            ("work", Json::from(100u64)),
        ]);
        a.set("exponent", Json::F64(1.5));
        let js = a.to_json();
        assert!(js.starts_with(&format!("{{\"schema\":{}", json_string(SCHEMA))));
        assert!(js.contains("\"bench\":\"demo\""));
        assert!(js.contains("\"seed\":9"));
        assert!(js.contains("\"rows\":[{\"n\":4,\"work\":100}]"));
        assert_eq!(js.matches('{').count(), js.matches('}').count());
    }

    #[test]
    fn artifact_embeds_profile_verbatim() {
        let mut t = Tracker::profiled();
        t.span("a", |t| t.charge(pmcf_pram::Cost::par_flat(5)));
        let rep = t.profile_report().unwrap();
        let mut a = Artifact::new("demo", 0);
        a.profile = Some(rep.to_json());
        let js = a.to_json();
        assert!(js.contains("\"profile\":{\"schema\":\"pmcf.profile/v1\""));
    }

    #[test]
    fn json_dash_streams_and_path_writes() {
        let a = BenchArgs::parse_from(["--json", "-", "--seed", "7", "64"].map(String::from));
        assert!(a.stream);
        assert!(a.json.is_none());
        assert_eq!(a.seed_or(0), 7);
        assert_eq!(a.max_size_or(0), 64);
        let b = BenchArgs::parse_from(["--json", "out.json"].map(String::from));
        assert!(!b.stream);
        assert_eq!(b.json.as_deref(), Some(Path::new("out.json")));
    }

    #[test]
    fn for_run_routes_markdown_by_stream_flag() {
        let streaming = BenchArgs::parse_from(["--json", "-"].map(String::from));
        assert!(Artifact::for_run("demo", 1, &streaming).md_stderr);
        assert!(!Artifact::for_run("demo", 1, &BenchArgs::default()).md_stderr);
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("pmcf_artifact_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.json");
        let a = Artifact::new("demo", 1);
        a.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("\"schema\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
