//! Noise-aware regression gate over `pmcf.bench/v1` artifacts.
//!
//! [`gate`] diffs a candidate artifact against a committed baseline row
//! by row and metric by metric. Thresholds are chosen so deterministic
//! counters (work, depth, iterations) tolerate small model drift (±5%
//! noise passes) while a genuine 2× blow-up fails; wall-clock metrics
//! are advisory only (CI machines are too noisy to gate on), and fitted
//! scaling exponents are checked with an absolute slack. The
//! `bench-gate` binary wraps this as `... --json - | bench-gate
//! --baseline results/baseline/<bench>.json`.

use pmcf_obs::json::{parse, JsonValue};

/// Gate thresholds. All ratio thresholds compare `candidate/baseline`
/// and fire when the candidate is *worse* (larger); improvements never
/// fail the gate.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// Max allowed ratio for work-like counters (deterministic; 1.30
    /// absorbs model drift from minor refactors, flags 2×).
    pub work_ratio: f64,
    /// Max allowed ratio for depth counters.
    pub depth_ratio: f64,
    /// Max allowed ratio for iteration counts.
    pub iter_ratio: f64,
    /// Advisory ratio for wall-clock metrics (produces warnings, never
    /// failures).
    pub wall_ratio: f64,
    /// Absolute slack for fitted scaling exponents (|Δ| above this
    /// fails).
    pub exponent_slack: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            work_ratio: 1.30,
            depth_ratio: 1.30,
            iter_ratio: 1.50,
            wall_ratio: 3.0,
            exponent_slack: 0.35,
        }
    }
}

/// How a metric is judged, inferred from its name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricClass {
    Work,
    Depth,
    Iter,
    Wall,
    Exponent,
    Other,
}

fn classify(name: &str) -> MetricClass {
    let n = name.to_ascii_lowercase();
    if n.contains("exponent") {
        MetricClass::Exponent
    } else if n.contains("wall") || n.contains("seconds") || n.contains("time") {
        MetricClass::Wall
    } else if n.contains("depth") {
        MetricClass::Depth
    } else if n.contains("iter") {
        MetricClass::Iter
    } else if n.contains("work") || n == "cost" {
        MetricClass::Work
    } else {
        MetricClass::Other
    }
}

/// Severity of one finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Gate fails (nonzero exit).
    Fail,
    /// Advisory only.
    Warn,
}

/// One metric that moved past its threshold.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Identity of the row (or `<top-level>` for artifact extras).
    pub row: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Fail or warn.
    pub severity: Severity,
    /// Human-readable explanation with the threshold that fired.
    pub detail: String,
}

/// The gate's verdict over a baseline/candidate pair.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// Bench name (from the baseline artifact).
    pub bench: String,
    /// Seed the candidate artifact was produced with, when recorded.
    pub seed: Option<u64>,
    /// Everything that moved past a threshold.
    pub findings: Vec<Finding>,
    /// Rows matched between the two artifacts.
    pub rows_compared: usize,
    /// Numeric metrics compared across matched rows and extras.
    pub metrics_compared: usize,
}

impl GateReport {
    /// True when no finding is a failure (warnings don't gate).
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.severity != Severity::Fail)
    }

    /// Failures only.
    pub fn failures(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Fail)
    }

    /// Exact shell commands that reproduce the candidate measurement for
    /// each failing row, deduplicated. The command re-runs the bench bin
    /// at the failing row's instance size with the candidate's seed and
    /// the full observability surface enabled, so the regression can be
    /// re-measured (and triaged span-by-span via `report_diff`) without
    /// reverse-engineering the sweep.
    pub fn repro_commands(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for f in self.failures() {
            let cap = row_param(&f.row, "n").or_else(|| row_param(&f.row, "size"));
            let mut cmd = format!(
                "PMCF_PROFILE=1 PMCF_CRITPATH=1 PMCF_REPORT=results/candidate/{b}.report.json \
                 cargo run --release -p pmcf-bench --bin {b} --",
                b = self.bench
            );
            if let Some(cap) = cap {
                cmd.push_str(&format!(" {cap}"));
            }
            if let Some(seed) = self.seed {
                cmd.push_str(&format!(" --seed {seed}"));
            }
            cmd.push_str(&format!(" --json results/candidate/{}.json", self.bench));
            if !out.contains(&cmd) {
                out.push(cmd);
            }
        }
        out
    }

    /// Markdown summary: verdict line plus a findings table when
    /// anything fired.
    pub fn to_markdown(&self) -> String {
        let fails = self.failures().count();
        let warns = self.findings.len() - fails;
        let mut out = format!(
            "## bench-gate — {}\n\n{}: {} rows, {} metrics compared; {} failure(s), {} warning(s)\n",
            self.bench,
            if self.passed() { "PASS" } else { "FAIL" },
            self.rows_compared,
            self.metrics_compared,
            fails,
            warns,
        );
        if !self.findings.is_empty() {
            out.push_str("\n| row | metric | baseline | candidate | severity | detail |\n");
            out.push_str("|---|---|---:|---:|---|---|\n");
            for f in &self.findings {
                out.push_str(&format!(
                    "| {} | {} | {:.4} | {:.4} | {} | {} |\n",
                    f.row,
                    f.metric,
                    f.baseline,
                    f.candidate,
                    match f.severity {
                        Severity::Fail => "FAIL",
                        Severity::Warn => "warn",
                    },
                    f.detail,
                ));
            }
        }
        let repro = self.repro_commands();
        if !repro.is_empty() {
            out.push_str("\n### Reproduce\n\n```sh\n");
            for cmd in &repro {
                out.push_str(cmd);
                out.push('\n');
            }
            out.push_str("```\n");
        }
        out
    }
}

/// Extract a named numeric sweep parameter (`key=value`) from a
/// [`row_key`]-formatted row identity string. Integral values print
/// without a trailing `.0` so they can be passed back as a bench-bin
/// positional argument.
fn row_param(row: &str, key: &str) -> Option<String> {
    for tok in row.split(' ') {
        if let Some(v) = tok.strip_prefix(&format!("{key}=")) {
            if let Ok(x) = v.parse::<f64>() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    return Some(format!("{}", x as i64));
                }
                return Some(v.to_string());
            }
        }
    }
    None
}

/// Parse an artifact and verify it carries the `pmcf.bench/v1` schema.
pub fn parse_artifact(src: &str) -> Result<JsonValue, String> {
    let v = parse(src)?;
    match v.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == crate::artifact::SCHEMA => Ok(v),
        other => Err(format!(
            "not a {} artifact (schema {:?})",
            crate::artifact::SCHEMA,
            other
        )),
    }
}

/// Numeric fields that parameterize a row (instance dimensions and sweep
/// knobs) rather than measure it. They join the row key so that rows of
/// the same instance at different sweep points don't collide — a
/// collision makes the gate diff *mismatched* rows, which can fail a
/// baseline against itself (or mask a regression when the first match
/// happens to be the cheapest row).
const KEY_FIELDS: [&str; 7] = ["n", "m", "size", "batch", "sources", "rounds", "eps"];

/// Identity of a row: the bench-stable fields (all string values, plus
/// the parameter fields of [`KEY_FIELDS`] when present), independent of
/// the measured metrics.
fn row_key(row: &JsonValue) -> String {
    let mut parts = Vec::new();
    if let Some(obj) = row.as_obj() {
        for (k, v) in obj {
            match v {
                JsonValue::Str(s) => parts.push(format!("{k}={s}")),
                _ if KEY_FIELDS.contains(&k.as_str()) => {
                    if let Some(x) = v.as_f64() {
                        parts.push(format!("{k}={x}"));
                    }
                }
                _ => {}
            }
        }
    }
    if parts.is_empty() {
        "<row>".to_string()
    } else {
        parts.join(" ")
    }
}

fn ratio(baseline: f64, candidate: f64) -> f64 {
    if baseline.abs() < 1e-12 {
        if candidate.abs() < 1e-12 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        candidate / baseline
    }
}

/// Compare one named metric pair, pushing a finding when it crosses its
/// class threshold. Returns whether the metric was numeric (counted).
fn judge_metric(
    row: &str,
    name: &str,
    base: &JsonValue,
    cand: &JsonValue,
    cfg: &GateConfig,
    findings: &mut Vec<Finding>,
) -> bool {
    // boolean invariants: a true→false flip is always a regression
    if let (JsonValue::Bool(b), JsonValue::Bool(c)) = (base, cand) {
        if *b && !*c {
            findings.push(Finding {
                row: row.to_string(),
                metric: name.to_string(),
                baseline: 1.0,
                candidate: 0.0,
                severity: Severity::Fail,
                detail: "boolean invariant regressed true → false".to_string(),
            });
        }
        return false;
    }
    // nested objects (e.g. the per-solver `exponents` map): recurse one
    // level, qualifying the metric name with the outer key
    if let (JsonValue::Obj(bo), JsonValue::Obj(_)) = (base, cand) {
        for (k, bv) in bo {
            if let Some(cv) = cand.get(k) {
                judge_metric(row, &format!("{name}.{k}"), bv, cv, cfg, findings);
            }
        }
        return false;
    }
    let (Some(b), Some(c)) = (base.as_f64(), cand.as_f64()) else {
        return false;
    };
    let class = classify(name);
    match class {
        MetricClass::Exponent => {
            let delta = (c - b).abs();
            if delta > cfg.exponent_slack {
                findings.push(Finding {
                    row: row.to_string(),
                    metric: name.to_string(),
                    baseline: b,
                    candidate: c,
                    severity: Severity::Fail,
                    detail: format!(
                        "exponent moved by {delta:.3} (slack {:.3})",
                        cfg.exponent_slack
                    ),
                });
            }
        }
        MetricClass::Wall => {
            let r = ratio(b, c);
            if r > cfg.wall_ratio {
                findings.push(Finding {
                    row: row.to_string(),
                    metric: name.to_string(),
                    baseline: b,
                    candidate: c,
                    severity: Severity::Warn,
                    detail: format!(
                        "wall-clock {r:.2}× baseline (advisory, threshold {:.2}×)",
                        cfg.wall_ratio
                    ),
                });
            }
        }
        MetricClass::Work | MetricClass::Depth | MetricClass::Iter | MetricClass::Other => {
            let limit = match class {
                MetricClass::Depth => cfg.depth_ratio,
                MetricClass::Iter => cfg.iter_ratio,
                _ => cfg.work_ratio,
            };
            let r = ratio(b, c);
            if r > limit {
                findings.push(Finding {
                    row: row.to_string(),
                    metric: name.to_string(),
                    baseline: b,
                    candidate: c,
                    // unknown counters are advisory: their scale-up may
                    // be benign (e.g. a sampler touching more buckets)
                    severity: if class == MetricClass::Other {
                        Severity::Warn
                    } else {
                        Severity::Fail
                    },
                    detail: format!("{r:.2}× baseline (threshold {limit:.2}×)"),
                });
            }
        }
    }
    true
}

/// Does this value carry depth or exponent measurements? Used to decide
/// whether a candidate-only row/metric deserves an advisory finding: a
/// new depth or exponent series is exactly the kind of coverage that
/// should get pinned into the baseline, so the gate says so (as a
/// warning — a freshly-added measurement cannot regress anything).
fn carries_depth_or_exponent(name: &str, v: &JsonValue) -> bool {
    match v {
        JsonValue::Obj(pairs) => pairs
            .iter()
            .any(|(k, pv)| carries_depth_or_exponent(&format!("{name}.{k}"), pv)),
        JsonValue::Int(_) | JsonValue::UInt(_) | JsonValue::Float(_) => {
            matches!(classify(name), MetricClass::Depth | MetricClass::Exponent)
        }
        _ => false,
    }
}

/// Diff `candidate` against `baseline` under `cfg`.
///
/// Rows are matched by [`row_key`]; a baseline row with no candidate
/// counterpart is itself a failure (coverage must not silently shrink).
/// Extra candidate rows are allowed; when such a row (or a candidate-only
/// top-level metric) carries depth or exponent measurements it earns an
/// advisory finding asking for a baseline pin, never a failure. Returns
/// `Err` when the two artifacts are not the same bench.
pub fn gate(
    baseline: &JsonValue,
    candidate: &JsonValue,
    cfg: &GateConfig,
) -> Result<GateReport, String> {
    let bench = baseline
        .get("bench")
        .and_then(JsonValue::as_str)
        .unwrap_or("<unknown>")
        .to_string();
    let cand_bench = candidate
        .get("bench")
        .and_then(JsonValue::as_str)
        .unwrap_or("<unknown>");
    if bench != cand_bench {
        return Err(format!(
            "bench mismatch: baseline is {bench:?}, candidate is {cand_bench:?}"
        ));
    }
    let seed = candidate.get("seed").and_then(|v| match v {
        JsonValue::UInt(u) => Some(*u),
        JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    });
    let empty: Vec<JsonValue> = Vec::new();
    let base_rows = baseline
        .get("rows")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&empty);
    let cand_rows = candidate
        .get("rows")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&empty);

    let mut findings = Vec::new();
    let mut rows_compared = 0;
    let mut metrics_compared = 0;

    for brow in base_rows {
        let key = row_key(brow);
        let Some(crow) = cand_rows.iter().find(|r| row_key(r) == key) else {
            findings.push(Finding {
                row: key,
                metric: "<row>".to_string(),
                baseline: 1.0,
                candidate: 0.0,
                severity: Severity::Fail,
                detail: "row present in baseline but missing from candidate".to_string(),
            });
            continue;
        };
        rows_compared += 1;
        if let Some(obj) = brow.as_obj() {
            for (name, bval) in obj {
                if let Some(cval) = crow.get(name) {
                    if judge_metric(&row_key(brow), name, bval, cval, cfg, &mut findings) {
                        metrics_compared += 1;
                    }
                }
            }
        }
    }

    // candidate-only rows: never a failure, but a new depth/exponent
    // series is coverage worth pinning — surface it as an advisory
    for crow in cand_rows {
        let key = row_key(crow);
        if base_rows.iter().any(|r| row_key(r) == key) {
            continue;
        }
        let depthish = crow
            .as_obj()
            .map(|obj| obj.iter().any(|(k, v)| carries_depth_or_exponent(k, v)))
            .unwrap_or(false);
        if depthish {
            findings.push(Finding {
                row: key,
                metric: "<row>".to_string(),
                baseline: 0.0,
                candidate: 1.0,
                severity: Severity::Warn,
                detail: "new depth/exponent row, advisory — pin it into the baseline".to_string(),
            });
        }
    }

    // top-level extras (fitted exponents, sweep metadata) — everything
    // except the structural keys
    if let Some(obj) = baseline.as_obj() {
        for (name, bval) in obj {
            if matches!(
                name.as_str(),
                "schema" | "bench" | "seed" | "rows" | "profile"
            ) {
                continue;
            }
            if let Some(cval) = candidate.get(name) {
                if judge_metric("<top-level>", name, bval, cval, cfg, &mut findings) {
                    metrics_compared += 1;
                }
            }
        }
    }

    // candidate-only top-level depth/exponent metrics: same advisory
    if let Some(obj) = candidate.as_obj() {
        for (name, cval) in obj {
            if matches!(
                name.as_str(),
                "schema" | "bench" | "seed" | "rows" | "profile"
            ) || baseline.get(name).is_some()
            {
                continue;
            }
            if carries_depth_or_exponent(name, cval) {
                findings.push(Finding {
                    row: "<top-level>".to_string(),
                    metric: name.to_string(),
                    baseline: 0.0,
                    candidate: cval.as_f64().unwrap_or(1.0),
                    severity: Severity::Warn,
                    detail: "new depth/exponent metric, advisory — pin it into the baseline"
                        .to_string(),
                });
            }
        }
    }

    Ok(GateReport {
        bench,
        seed,
        findings,
        rows_compared,
        metrics_compared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(rows: &[(&str, u64, u64, f64)], exponent: f64) -> JsonValue {
        let rows_json: String = rows
            .iter()
            .map(|(s, w, d, wall)| {
                format!(
                    r#"{{"solver":"{s}","n":16,"m":64,"work":{w},"depth":{d},"wall_seconds":{wall},"feasible":true}}"#
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        parse(&format!(
            r#"{{"schema":"pmcf.bench/v1","bench":"demo","seed":42,"work_exponent":{exponent},"rows":[{rows_json}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = art(&[("ref", 1000, 50, 0.1), ("robust", 800, 30, 0.2)], 1.5);
        let r = gate(&a, &a, &GateConfig::default()).unwrap();
        assert!(r.passed(), "{}", r.to_markdown());
        assert_eq!(r.rows_compared, 2);
        assert!(r.findings.is_empty());
        assert!(r.metrics_compared >= 8);
    }

    #[test]
    fn five_percent_noise_passes() {
        let base = art(&[("ref", 1000, 50, 0.1)], 1.50);
        let cand = art(&[("ref", 1050, 52, 0.104)], 1.55);
        let r = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(r.passed(), "{}", r.to_markdown());
        assert!(r.findings.is_empty());
    }

    #[test]
    fn doubled_work_fails() {
        let base = art(&[("ref", 1000, 50, 0.1)], 1.5);
        let cand = art(&[("ref", 2000, 50, 0.1)], 1.5);
        let r = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(!r.passed());
        let f: Vec<_> = r.failures().collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].metric, "work");
    }

    #[test]
    fn missing_row_fails_but_extra_row_is_fine() {
        let base = art(&[("ref", 1000, 50, 0.1), ("robust", 800, 30, 0.2)], 1.5);
        let cand = art(&[("ref", 1000, 50, 0.1)], 1.5);
        let r = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(!r.passed());
        assert!(r.failures().any(|f| f.metric == "<row>"));
        // reversed direction: candidate grew a row — allowed
        let r2 = gate(&cand, &base, &GateConfig::default()).unwrap();
        assert!(r2.passed(), "{}", r2.to_markdown());
    }

    #[test]
    fn exponent_slack_is_absolute() {
        let base = art(&[("ref", 1000, 50, 0.1)], 1.50);
        let ok = art(&[("ref", 1000, 50, 0.1)], 1.80);
        let bad = art(&[("ref", 1000, 50, 0.1)], 1.90);
        assert!(gate(&base, &ok, &GateConfig::default()).unwrap().passed());
        let r = gate(&base, &bad, &GateConfig::default()).unwrap();
        assert!(!r.passed());
        assert!(r.failures().any(|f| f.metric == "work_exponent"));
    }

    #[test]
    fn wall_clock_blowup_only_warns() {
        let base = art(&[("ref", 1000, 50, 0.1)], 1.5);
        let cand = art(&[("ref", 1000, 50, 5.0)], 1.5);
        let r = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(r.passed(), "wall must not gate: {}", r.to_markdown());
        assert!(r
            .findings
            .iter()
            .any(|f| f.severity == Severity::Warn && f.metric == "wall_seconds"));
    }

    #[test]
    fn boolean_invariant_flip_fails() {
        let base = art(&[("ref", 1000, 50, 0.1)], 1.5);
        let src = parse(
            r#"{"schema":"pmcf.bench/v1","bench":"demo","seed":42,"work_exponent":1.5,"rows":[{"solver":"ref","n":16,"m":64,"work":1000,"depth":50,"wall_seconds":0.1,"feasible":false}]}"#,
        )
        .unwrap();
        let r = gate(&base, &src, &GateConfig::default()).unwrap();
        assert!(!r.passed());
        assert!(r.failures().any(|f| f.metric == "feasible"));
    }

    #[test]
    fn nested_exponent_maps_are_compared() {
        let base = parse(
            r#"{"schema":"pmcf.bench/v1","bench":"demo","seed":1,"exponents":{"robust":1.5},"rows":[]}"#,
        )
        .unwrap();
        let bad = parse(
            r#"{"schema":"pmcf.bench/v1","bench":"demo","seed":1,"exponents":{"robust":2.1},"rows":[]}"#,
        )
        .unwrap();
        let r = gate(&base, &bad, &GateConfig::default()).unwrap();
        assert!(!r.passed());
        assert!(r.failures().any(|f| f.metric == "exponents.robust"));
        assert!(gate(&base, &base, &GateConfig::default()).unwrap().passed());
    }

    #[test]
    fn bench_mismatch_is_an_error() {
        let a = art(&[("ref", 1, 1, 0.1)], 1.5);
        let b = parse(r#"{"schema":"pmcf.bench/v1","bench":"other","seed":1,"rows":[]}"#).unwrap();
        assert!(gate(&a, &b, &GateConfig::default()).is_err());
    }

    #[test]
    fn improvements_never_fail() {
        let base = art(&[("ref", 1000, 50, 0.1)], 1.5);
        let cand = art(&[("ref", 100, 5, 0.01)], 1.5);
        let r = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(r.passed(), "{}", r.to_markdown());
    }

    #[test]
    fn sweep_parameter_fields_disambiguate_rows() {
        // Three rows of the same instance at different sweep points
        // (`batch`) must pair up batch-for-batch: without `batch` in the
        // row key, every baseline row diffs against the *first* candidate
        // row and a baseline can fail against itself.
        let rows = |w16: u64, w64: u64, w256: u64| {
            parse(&format!(
                r#"{{"schema":"pmcf.bench/v1","bench":"demo","seed":7,"rows":[
                    {{"section":"dynx","n":128,"m":1024,"batch":16,"work":{w16}}},
                    {{"section":"dynx","n":128,"m":1024,"batch":64,"work":{w64}}},
                    {{"section":"dynx","n":128,"m":1024,"batch":256,"work":{w256}}}]}}"#
            ))
            .unwrap()
        };
        let base = rows(1_700_000, 900_000, 800_000);
        let r = gate(&base, &base, &GateConfig::default()).unwrap();
        assert!(r.passed(), "self-gate must pass: {}", r.to_markdown());
        assert!(r.findings.is_empty());
        // a genuine regression in the *last* sweep point still fails
        let bad = rows(1_700_000, 900_000, 1_700_000);
        let r = gate(&base, &bad, &GateConfig::default()).unwrap();
        assert!(!r.passed());
        assert!(r
            .failures()
            .any(|f| f.metric == "work" && f.row.contains("batch=256")));
    }

    #[test]
    fn new_depth_row_is_advisory_not_failure() {
        let base = art(&[("ref", 1000, 50, 0.1)], 1.5);
        // candidate grows a new-keyed row carrying a depth metric
        let cand = parse(
            r#"{"schema":"pmcf.bench/v1","bench":"demo","seed":42,"work_exponent":1.5,"rows":[
                {"solver":"ref","n":16,"m":64,"work":1000,"depth":50,"wall_seconds":0.1,"feasible":true},
                {"section":"critpath","solver":"robust","n":16,"total_depth":4200}]}"#,
        )
        .unwrap();
        let r = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(r.passed(), "{}", r.to_markdown());
        assert!(r.findings.iter().any(|f| f.severity == Severity::Warn
            && f.metric == "<row>"
            && f.detail.contains("advisory")),);
        // a candidate-only row with no depth/exponent content stays silent
        let quiet = parse(
            r#"{"schema":"pmcf.bench/v1","bench":"demo","seed":42,"work_exponent":1.5,"rows":[
                {"solver":"ref","n":16,"m":64,"work":1000,"depth":50,"wall_seconds":0.1,"feasible":true},
                {"section":"extra","solver":"robust","n":16,"work":7}]}"#,
        )
        .unwrap();
        let r = gate(&base, &quiet, &GateConfig::default()).unwrap();
        assert!(r.passed());
        assert!(r.findings.is_empty(), "{}", r.to_markdown());
    }

    #[test]
    fn new_top_level_depth_exponents_are_advisory() {
        let base = art(&[("ref", 1000, 50, 0.1)], 1.5);
        let cand = parse(
            r#"{"schema":"pmcf.bench/v1","bench":"demo","seed":42,"work_exponent":1.5,
                "depth_exponents":{"robust":0.62},"rows":[
                {"solver":"ref","n":16,"m":64,"work":1000,"depth":50,"wall_seconds":0.1,"feasible":true}]}"#,
        )
        .unwrap();
        let r = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(r.passed(), "{}", r.to_markdown());
        assert!(r
            .findings
            .iter()
            .any(|f| f.severity == Severity::Warn && f.metric == "depth_exponents"));
        // once pinned, the same metric gates like any exponent
        let pinned = cand.clone();
        let drifted = parse(
            r#"{"schema":"pmcf.bench/v1","bench":"demo","seed":42,"work_exponent":1.5,
                "depth_exponents":{"robust":1.12},"rows":[
                {"solver":"ref","n":16,"m":64,"work":1000,"depth":50,"wall_seconds":0.1,"feasible":true}]}"#,
        )
        .unwrap();
        let r = gate(&pinned, &drifted, &GateConfig::default()).unwrap();
        assert!(!r.passed());
        assert!(r.failures().any(|f| f.metric == "depth_exponents.robust"));
    }

    #[test]
    fn failing_gate_carries_exact_repro_command() {
        let base = art(&[("ref", 1000, 50, 0.1)], 1.5);
        let cand = art(&[("ref", 2000, 120, 0.1)], 1.5);
        let r = gate(&base, &cand, &GateConfig::default()).unwrap();
        assert!(!r.passed());
        assert_eq!(r.seed, Some(42));
        let repro = r.repro_commands();
        // two failing metrics (work, depth) on the same row dedup to one
        // command line
        assert_eq!(repro.len(), 1, "{repro:?}");
        let cmd = &repro[0];
        assert!(cmd.contains("--bin demo"), "{cmd}");
        assert!(cmd.contains(" 16 "), "instance size from row key: {cmd}");
        assert!(cmd.contains("--seed 42"), "{cmd}");
        assert!(cmd.contains("PMCF_REPORT="), "{cmd}");
        let md = r.to_markdown();
        assert!(md.contains("### Reproduce"), "{md}");
        assert!(md.contains(cmd.as_str()), "{md}");
    }

    #[test]
    fn passing_gate_has_no_repro_section() {
        let a = art(&[("ref", 1000, 50, 0.1)], 1.5);
        let r = gate(&a, &a, &GateConfig::default()).unwrap();
        assert!(r.repro_commands().is_empty());
        assert!(!r.to_markdown().contains("### Reproduce"));
    }

    #[test]
    fn parse_artifact_rejects_wrong_schema() {
        assert!(parse_artifact(r#"{"schema":"pmcf.events/v1"}"#).is_err());
        assert!(parse_artifact(r#"{"schema":"pmcf.bench/v1","bench":"x","rows":[]}"#).is_ok());
    }
}
