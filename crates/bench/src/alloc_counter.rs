//! A counting global allocator for the bench binaries.
//!
//! Wraps [`std::alloc::System`] and counts every allocation (and
//! reallocation) with relaxed atomics — cheap enough to leave on for all
//! benches, precise enough to assert *zero*: the solver bench measures
//! the steady-state CG loop with [`measure_allocs`] and gates
//! `allocs_per_iter == 0` against `results/baseline/solver.json`.
//!
//! The allocator is installed by linking this crate (the
//! `#[global_allocator]` below), so every `pmcf-bench` binary counts
//! automatically; library users of the solver stack are unaffected.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] plus relaxed-atomic allocation counters.
pub struct CountingAllocator;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Heap allocations observed so far in this process.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Heap bytes requested so far in this process.
pub fn alloc_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Run `f` and return its result plus the number of heap allocations it
/// performed. Single-threaded measurement only: concurrent allocations
/// from other threads are attributed to `f`.
pub fn measure_allocs<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = alloc_count();
    let r = f();
    (r, alloc_count() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_a_vec_allocation() {
        let (v, allocs) = measure_allocs(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        assert!(allocs >= 1, "a fresh Vec must be counted");
    }

    #[test]
    fn pure_arithmetic_is_allocation_free() {
        let (sum, allocs) = measure_allocs(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(sum > 0);
        assert_eq!(allocs, 0, "no heap traffic expected");
    }
}
