//! Convergence-curve "figure": μ, duality-gap proxy and cumulative work
//! per iteration of the reference engine (the paper has no figures; this
//! is the observability a production solver ships with).

use pmcf_core::init;
use pmcf_core::reference::{path_follow_traced, PathFollowConfig};
use pmcf_core::trace::TraceRecorder;
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn main() {
    let n = 64;
    let m = generators::dense_m(n);
    let p = generators::random_mcf(n, m, 8, 6, 7);
    let ext = init::extend(&p);
    let mu0 = init::initial_mu(&ext.prob, 0.25);
    let mu_end = init::final_mu(&ext.prob);
    let mut t = Tracker::new();
    let mut rec = TraceRecorder::new();
    let (_, stats) = path_follow_traced(
        &mut t,
        &ext.prob,
        ext.x0.clone(),
        mu0,
        mu_end,
        &PathFollowConfig::default(),
        Some(&mut rec),
    );
    println!(
        "## Convergence trace — n={n}, m={m} ({} iterations)\n",
        stats.iterations
    );
    println!("{}", rec.to_markdown(stats.iterations / 20 + 1));
    if let Some(rate) = rec.mu_decay_rate() {
        let tau_sum_guess = 2.0 * n as f64;
        println!(
            "μ decay/iter: {rate:.5} (theory: 1 − r/√Στ ≈ {:.5})",
            1.0 - 0.5 / tau_sum_guess.sqrt()
        );
    }
}
