//! Convergence-curve "figure": μ, duality-gap proxy and cumulative work
//! per iteration of the reference engine (the paper has no figures; this
//! is the observability a production solver ships with).
//!
//! Flags: `[n] --seed <u64> --json <path>`; `PMCF_PROFILE=1` embeds the
//! span-tree profile of the traced solve.

use pmcf_bench::{mdln, Artifact, BenchArgs, Json};
use pmcf_core::init;
use pmcf_core::reference::{path_follow_traced, PathFollowConfig};
use pmcf_core::trace::TraceRecorder;
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    let n = args.max_size_or(64);
    let seed = args.seed_or(7);
    let mut artifact = Artifact::for_run("convergence", seed, &args);

    let m = generators::dense_m(n);
    let p = generators::random_mcf(n, m, 8, 6, seed);
    let ext = init::extend(&p).expect("bench instance within magnitude bounds");
    let mu0 = init::initial_mu(&ext.prob, 0.25);
    let mu_end = init::final_mu(&ext.prob);
    let mut t = tracker_from_env();
    let mut rec = TraceRecorder::new();
    let (_, stats) = path_follow_traced(
        &mut t,
        &ext.prob,
        ext.x0.clone(),
        mu0,
        mu_end,
        &PathFollowConfig::default(),
        Some(&mut rec),
    );
    mdln!(
        args,
        "## Convergence trace — n={n}, m={m} ({} iterations)\n",
        stats.iterations
    );
    mdln!(args, "{}", rec.to_markdown(stats.iterations / 20 + 1));
    artifact.set("n", Json::from(n));
    artifact.set("m", Json::from(m));
    artifact.set("iterations", Json::from(stats.iterations));
    artifact.set("trace", Json::Raw(rec.to_json()));
    if let Some(rate) = rec.mu_decay_rate() {
        let tau_sum_guess = 2.0 * n as f64;
        mdln!(
            args,
            "μ decay/iter: {rate:.5} (theory: 1 − r/√Στ ≈ {:.5})",
            1.0 - 0.5 / tau_sum_guess.sqrt()
        );
        artifact.set("mu_decay_rate", Json::F64(rate));
    }
    artifact.attach_profile(&format!("reference IPM, n={n}, m={m}"), &t);
    artifact.emit(&args);
    pmcf_obs::finish();
}
