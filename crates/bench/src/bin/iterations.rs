//! Experiment E-ITER — Theorem 1.2's iteration count: `Õ(√n)`.
//!
//! Sweeps n at m ≈ n^1.5 and fits iterations ~ n^a; the paper predicts
//! a ≈ 0.5 (times log factors from the μ range).

use pmcf_bench::fit_exponent;
use pmcf_core::reference::{path_follow, PathFollowConfig};
use pmcf_core::init;
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn main() {
    println!("## E-ITER — path-following iterations vs n (m = n^1.5)\n");
    println!("| n | m | iterations | iterations/√n | iterations/(√n·log μ-range) |");
    println!("|---|---|---|---|---|");
    let mut pts = Vec::new();
    for &n in &[36usize, 64, 100, 144, 196, 256] {
        let m = generators::dense_m(n);
        let p = generators::random_mcf(n, m, 8, 6, 11 + n as u64);
        let ext = init::extend(&p);
        let mu0 = init::initial_mu(&ext.prob, 0.25);
        let mu_end = init::final_mu(&ext.prob);
        let mut t = Tracker::new();
        let (_, stats) = path_follow(
            &mut t,
            &ext.prob,
            ext.x0.clone(),
            mu0,
            mu_end,
            &PathFollowConfig::default(),
        );
        let sq = (n as f64).sqrt();
        let lg = (mu0 / mu_end).ln();
        println!(
            "| {n} | {m} | {} | {:.1} | {:.3} |",
            stats.iterations,
            stats.iterations as f64 / sq,
            stats.iterations as f64 / (sq * lg)
        );
        pts.push((n as f64, stats.iterations as f64));
    }
    println!(
        "\nFitted exponent: iterations ~ n^{:.2} (paper: 0.5 ± log factors)",
        fit_exponent(&pts)
    );
}
