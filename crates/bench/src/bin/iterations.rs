//! Experiment E-ITER — Theorem 1.2's iteration count: `Õ(√n)`.
//!
//! Sweeps n at m ≈ n^1.5 and fits iterations ~ n^a; the paper predicts
//! a ≈ 0.5 (times log factors from the μ range).
//!
//! Flags: `[max_n] --seed <u64> --json <path>`.

use pmcf_bench::{fit_exponent, mdln, Artifact, BenchArgs, Json};
use pmcf_core::init;
use pmcf_core::reference::{path_follow, PathFollowConfig};
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    let max_n = args.max_size_or(256);
    let seed = args.seed_or(11);
    let mut artifact = Artifact::for_run("iterations", seed, &args);
    let mut profile = None;

    mdln!(
        args,
        "## E-ITER — path-following iterations vs n (m = n^1.5)\n"
    );
    mdln!(
        args,
        "| n | m | iterations | iterations/√n | iterations/(√n·log μ-range) |"
    );
    mdln!(args, "|---|---|---|---|---|");
    let mut pts = Vec::new();
    for &n in &[36usize, 64, 100, 144, 196, 256] {
        if n > max_n {
            break;
        }
        let m = generators::dense_m(n);
        let p = generators::random_mcf(n, m, 8, 6, seed + n as u64);
        let ext = init::extend(&p).expect("bench instance within magnitude bounds");
        let mu0 = init::initial_mu(&ext.prob, 0.25);
        let mu_end = init::final_mu(&ext.prob);
        let mut t = tracker_from_env();
        let (_, stats) = path_follow(
            &mut t,
            &ext.prob,
            ext.x0.clone(),
            mu0,
            mu_end,
            &PathFollowConfig::default(),
        );
        let sq = (n as f64).sqrt();
        let lg = (mu0 / mu_end).ln();
        mdln!(
            args,
            "| {n} | {m} | {} | {:.1} | {:.3} |",
            stats.iterations,
            stats.iterations as f64 / sq,
            stats.iterations as f64 / (sq * lg)
        );
        artifact.row(vec![
            ("n", Json::from(n)),
            ("m", Json::from(m)),
            ("iterations", Json::from(stats.iterations)),
            ("per_sqrt_n", Json::from(stats.iterations as f64 / sq)),
            (
                "per_sqrt_n_log",
                Json::from(stats.iterations as f64 / (sq * lg)),
            ),
            ("work", Json::from(t.work())),
            ("depth", Json::from(t.depth())),
        ]);
        if let Some(rep) = t.profile_report() {
            profile = Some((format!("reference IPM, n={n}, m={m}"), rep));
        }
        pts.push((n as f64, stats.iterations as f64));
    }
    let a = fit_exponent(&pts);
    mdln!(
        args,
        "\nFitted exponent: iterations ~ n^{a:.2} (paper: 0.5 ± log factors)"
    );
    artifact.set("exponent", Json::F64(a));

    if let Some((label, rep)) = profile {
        artifact.attach_profile_report(&label, &rep);
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}
