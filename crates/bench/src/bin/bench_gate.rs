//! `bench-gate` — fail CI when a `pmcf.bench/v1` artifact regresses
//! against a committed baseline.
//!
//! Usage:
//! ```text
//! bench-gate --baseline results/baseline/table1_mcf.json [--candidate <path|->]
//!            [--work-ratio X] [--depth-ratio X] [--iter-ratio X]
//!            [--wall-ratio X] [--exponent-slack X] [--quiet]
//! ```
//!
//! The candidate defaults to stdin, so a harness streams straight in:
//! `table1_mcf -- --json - | bench-gate -- --baseline <baseline>`.
//!
//! Exit codes: 0 pass, 1 regression, 2 usage / I/O / parse error.

use pmcf_bench::gate::{gate, parse_artifact, GateConfig};
use std::io::Read;
use std::process::ExitCode;

struct Cli {
    baseline: String,
    candidate: Option<String>,
    cfg: GateConfig,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-gate --baseline <path> [--candidate <path|->] \
         [--work-ratio X] [--depth-ratio X] [--iter-ratio X] \
         [--wall-ratio X] [--exponent-slack X] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut baseline = None;
    let mut candidate = None;
    let mut cfg = GateConfig::default();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    let next_f64 = |args: &mut dyn Iterator<Item = String>, flag: &str| -> f64 {
        args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} requires a number");
            usage()
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = args.next(),
            "--candidate" => candidate = args.next(),
            "--work-ratio" => cfg.work_ratio = next_f64(&mut args, "--work-ratio"),
            "--depth-ratio" => cfg.depth_ratio = next_f64(&mut args, "--depth-ratio"),
            "--iter-ratio" => cfg.iter_ratio = next_f64(&mut args, "--iter-ratio"),
            "--wall-ratio" => cfg.wall_ratio = next_f64(&mut args, "--wall-ratio"),
            "--exponent-slack" => cfg.exponent_slack = next_f64(&mut args, "--exponent-slack"),
            "--quiet" => quiet = true,
            other => {
                eprintln!("unrecognized argument {other:?}");
                usage();
            }
        }
    }
    let Some(baseline) = baseline else {
        eprintln!("--baseline is required");
        usage();
    };
    Cli {
        baseline,
        candidate,
        cfg,
        quiet,
    }
}

fn read_source(spec: &Option<String>) -> Result<String, String> {
    match spec.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(buf)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}")),
    }
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let run = || -> Result<bool, String> {
        let base_src = std::fs::read_to_string(&cli.baseline)
            .map_err(|e| format!("reading {}: {e}", cli.baseline))?;
        let cand_src = read_source(&cli.candidate)?;
        let base = parse_artifact(&base_src).map_err(|e| format!("baseline: {e}"))?;
        let cand = parse_artifact(&cand_src).map_err(|e| format!("candidate: {e}"))?;
        let report = gate(&base, &cand, &cli.cfg)?;
        if !cli.quiet || !report.passed() {
            println!("{}", report.to_markdown());
        }
        Ok(report.passed())
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::from(2)
        }
    }
}
