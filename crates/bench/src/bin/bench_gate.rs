//! `bench-gate` — fail CI when a `pmcf.bench/v1` artifact regresses
//! against a committed baseline.
//!
//! Usage:
//! ```text
//! bench-gate --baseline results/baseline/table1_mcf.json [--candidate <path|->]
//!            [--baseline-report <path>] [--candidate-report <path>]
//!            [--triage-top K]
//!            [--work-ratio X] [--depth-ratio X] [--iter-ratio X]
//!            [--wall-ratio X] [--exponent-slack X] [--quiet]
//! ```
//!
//! The candidate defaults to stdin, so a harness streams straight in:
//! `table1_mcf -- --json - | bench-gate -- --baseline <baseline>`.
//!
//! When `--baseline-report` and `--candidate-report` name `pmcf.report/v1`
//! run reports for the same two runs, a gate *failure* additionally
//! prints a span-level triage table (the `report_diff` ranking) so the
//! regression is attributed to the span that moved, not just the
//! top-line counter that crossed a threshold.
//!
//! Exit codes: 0 pass, 1 regression, 2 usage / I/O / parse error.

use pmcf_bench::gate::{gate, parse_artifact, GateConfig};
use pmcf_obs::{diff_reports, RunReport};
use std::io::Read;
use std::process::ExitCode;

struct Cli {
    baseline: String,
    candidate: Option<String>,
    baseline_report: Option<String>,
    candidate_report: Option<String>,
    triage_top: usize,
    cfg: GateConfig,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-gate --baseline <path> [--candidate <path|->] \
         [--baseline-report <path>] [--candidate-report <path>] \
         [--triage-top K] \
         [--work-ratio X] [--depth-ratio X] [--iter-ratio X] \
         [--wall-ratio X] [--exponent-slack X] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut baseline = None;
    let mut candidate = None;
    let mut baseline_report = None;
    let mut candidate_report = None;
    let mut triage_top = 10usize;
    let mut cfg = GateConfig::default();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    let next_f64 = |args: &mut dyn Iterator<Item = String>, flag: &str| -> f64 {
        args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} requires a number");
            usage()
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = args.next(),
            "--candidate" => candidate = args.next(),
            "--baseline-report" => baseline_report = args.next(),
            "--candidate-report" => candidate_report = args.next(),
            "--triage-top" => {
                triage_top = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--triage-top requires a positive integer");
                    usage()
                })
            }
            "--work-ratio" => cfg.work_ratio = next_f64(&mut args, "--work-ratio"),
            "--depth-ratio" => cfg.depth_ratio = next_f64(&mut args, "--depth-ratio"),
            "--iter-ratio" => cfg.iter_ratio = next_f64(&mut args, "--iter-ratio"),
            "--wall-ratio" => cfg.wall_ratio = next_f64(&mut args, "--wall-ratio"),
            "--exponent-slack" => cfg.exponent_slack = next_f64(&mut args, "--exponent-slack"),
            "--quiet" => quiet = true,
            other => {
                eprintln!("unrecognized argument {other:?}");
                usage();
            }
        }
    }
    let Some(baseline) = baseline else {
        eprintln!("--baseline is required");
        usage();
    };
    Cli {
        baseline,
        candidate,
        baseline_report,
        candidate_report,
        triage_top,
        cfg,
        quiet,
    }
}

/// Best-effort span-level triage: diff the two run reports and render
/// the top-K ranking. Any failure to load either report degrades to an
/// explanatory line rather than masking the gate verdict.
fn triage_markdown(cli: &Cli) -> Option<String> {
    let (base_path, cand_path) = match (&cli.baseline_report, &cli.candidate_report) {
        (Some(b), Some(c)) => (b, c),
        _ => return None,
    };
    let load = |path: &str| -> Result<RunReport, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        RunReport::from_json(&src).map_err(|e| format!("{path}: {e}"))
    };
    match (load(base_path), load(cand_path)) {
        (Ok(base), Ok(cand)) => {
            let diff = diff_reports(&base, &cand);
            Some(diff.to_markdown(cli.triage_top))
        }
        (b, c) => {
            let mut msg = String::from("### Span triage unavailable\n\n");
            for r in [b, c] {
                if let Err(e) = r {
                    msg.push_str(&format!("- {e}\n"));
                }
            }
            Some(msg)
        }
    }
}

fn read_source(spec: &Option<String>) -> Result<String, String> {
    match spec.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(buf)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}")),
    }
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let run = || -> Result<bool, String> {
        let base_src = std::fs::read_to_string(&cli.baseline)
            .map_err(|e| format!("reading {}: {e}", cli.baseline))?;
        let cand_src = read_source(&cli.candidate)?;
        let base = parse_artifact(&base_src).map_err(|e| format!("baseline: {e}"))?;
        let cand = parse_artifact(&cand_src).map_err(|e| format!("candidate: {e}"))?;
        let report = gate(&base, &cand, &cli.cfg)?;
        if !cli.quiet || !report.passed() {
            println!("{}", report.to_markdown());
        }
        if !report.passed() {
            if let Some(triage) = triage_markdown(&cli) {
                println!("{triage}");
            }
        }
        Ok(report.passed())
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::from(2)
        }
    }
}
