//! Experiment E-RESOLVE — incremental re-solve on graph deltas: the
//! work-ratio curve (resolve / fresh) as the delta grows from one edge
//! to 10 % of m.
//!
//! For each delta size `k` the harness checkpoints a fresh solve
//! (`solve_mcf_checkpointed`), applies a random batch of `k` edge
//! changes (a single cost change at `k = 1`; a mix of cost/capacity
//! updates, deletions and insertions beyond), and measures the charged
//! work of `McfCheckpoint::resolve` against a from-scratch `solve_mcf`
//! on the same mutated instance.
//!
//! Rows (`op=resolve_k<k>`): `delta_edges`, charged `work_resolve` /
//! `work_fresh` / `work_ratio` (the headline metric — gated), depth
//! ratio, and the resolve's IPM iteration count next to the fresh one.
//! A final `op=churn` row plays a 12-delta sequence through one
//! checkpoint and reports the cumulative ratio.
//!
//! Boolean invariants (a true→false flip fails the gate):
//! - `single_edge_ratio_below_half` — resolve work < 0.5× fresh for a
//!   1-edge delta (the ISSUE-9 acceptance bar),
//! - `objective_agreement_ok` — every resolve returned exactly the
//!   fresh optimum,
//! - `stale_deletes_zero` — the decomposition's key plumbing never
//!   reported a stale delete across the sweep.
//!
//! Flags: `--seed <u64> --json <path>`; `PMCF_REPORT=<path>` writes a
//! `pmcf.report/v1` run report in which resolve iterations appear under
//! the `resolve-reference` engine label.

use pmcf_bench::{mdln, Artifact, BenchArgs, Json};
use pmcf_core::{solve_mcf, NewEdge, ResolveDelta, SolverConfig};
use pmcf_graph::{generators, McfProblem};
use pmcf_pram::Tracker;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// A random delta touching `k` edges. `k = 1` is a pure cost change
/// (the headline point of the sweep); larger deltas mix cost and
/// capacity updates with deletions and insertions in a 2:1:1 ratio.
fn random_delta(p: &McfProblem, k: usize, rng: &mut SmallRng) -> ResolveDelta {
    let (n, m) = (p.n(), p.m());
    let mut delta = ResolveDelta::default();
    if k == 1 {
        delta
            .set_cost
            .push((rng.gen_range(0..m), rng.gen_range(-3..5)));
        return delta;
    }
    let structural = k / 4; // deletions and insertions each
    let mut deletable: Vec<usize> = (0..m).collect();
    for _ in 0..structural {
        let i = rng.gen_range(0..deletable.len());
        delta.delete.push(deletable.swap_remove(i));
        let from: usize = rng.gen_range(0..n);
        delta.insert.push(NewEdge {
            from,
            to: (from + 1 + rng.gen_range(0..n - 1)) % n,
            cap: rng.gen_range(1..5),
            cost: rng.gen_range(-3..5),
        });
    }
    for _ in 0..(k - 2 * structural) {
        let i = rng.gen_range(0..deletable.len());
        let e = deletable[i];
        if rng.gen_bool(0.5) {
            delta.set_cost.push((e, rng.gen_range(-3..5)));
        } else {
            delta.set_cap.push((e, rng.gen_range(1..6)));
        }
    }
    delta
}

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    pmcf_obs::report_init_from_env();
    let seed = args.seed_or(23);
    let mut artifact = Artifact::for_run("resolve", seed, &args);
    artifact.set(
        "threads",
        Json::Str(rayon::current_num_threads().to_string()),
    );

    let cfg = SolverConfig::default();
    let (n, m) = (33usize, 198usize);
    let base = generators::random_mcf(n, m, 4, 3, seed);

    mdln!(args, "## E-RESOLVE — incremental re-solve work ratio\n");
    mdln!(
        args,
        "| op | delta_edges | m | work_resolve | work_fresh | work_ratio | iters_resolve | iters_fresh | wall_seconds |"
    );
    mdln!(args, "|---|---|---|---|---|---|---|---|---|");

    let mut agreement = true;
    let mut stale_total = 0u64;
    let mut single_edge_ratio = f64::NAN;

    // ---- the sweep: 1-edge up to 10%-of-m deltas ----
    let mut sizes = vec![1usize, (m / 100).max(2), (m / 20).max(3), (m / 10).max(4)];
    sizes.dedup();
    for (si, &k) in sizes.iter().enumerate() {
        // a delta may delete its way into infeasibility; draw from a
        // seed-indexed substream until the mutated instance stays
        // solvable so the ratio always compares two successful solves
        let mut attempt = 0u64;
        let (
            work_res,
            depth_res,
            iters_res,
            work_fresh,
            depth_fresh,
            iters_fresh,
            wall,
            sol_ok,
            stale,
        ) = loop {
            let mut rng = SmallRng::seed_from_u64(seed ^ (si as u64) << 8 ^ attempt << 32);
            let mut tck = Tracker::new();
            let (mut ck, first) = pmcf_core::solve_mcf_checkpointed(&mut tck, &base, &cfg);
            first.expect("base bench instance is feasible");
            let delta = random_delta(&base, k, &mut rng);
            let mut tr = Tracker::new();
            let wall = Instant::now();
            let got = ck.resolve(&mut tr, &delta);
            let wall = wall.elapsed().as_secs_f64();
            match got {
                Ok(sol) => {
                    let mut tf = Tracker::new();
                    let fresh = solve_mcf(&mut tf, ck.problem(), &cfg)
                        .expect("resolve succeeded, fresh must too");
                    break (
                        tr.work(),
                        tr.depth(),
                        sol.stats.iterations,
                        tf.work(),
                        tf.depth(),
                        fresh.stats.iterations,
                        wall,
                        sol.cost == fresh.cost,
                        ck.stale_deletes(),
                    );
                }
                Err(_) => {
                    attempt += 1;
                    assert!(attempt < 16, "could not draw a feasible delta of size {k}");
                }
            }
        };
        agreement &= sol_ok;
        stale_total += stale;
        let ratio = work_res as f64 / work_fresh as f64;
        let depth_ratio = depth_res as f64 / depth_fresh as f64;
        if k == 1 {
            single_edge_ratio = ratio;
        }
        let op = format!("resolve_k{k}");
        mdln!(
            args,
            "| {op} | {k} | {m} | {work_res} | {work_fresh} | {ratio:.4} | {iters_res} | {iters_fresh} | {wall:.4} |"
        );
        artifact.row(vec![
            ("op", Json::Str(op)),
            ("delta_edges", Json::from(k)),
            ("n", Json::from(n)),
            ("m", Json::from(m)),
            ("work_resolve", Json::from(work_res)),
            ("work_fresh", Json::from(work_fresh)),
            ("work_ratio", Json::from(ratio)),
            ("depth_ratio", Json::from(depth_ratio)),
            ("iterations_resolve", Json::from(iters_res)),
            ("iterations_fresh", Json::from(iters_fresh)),
            ("wall_seconds", Json::from(wall)),
        ]);
    }

    // ---- churn: one checkpoint, 12 deltas, cumulative ratio ----
    let churn_rounds = 12usize;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut tck = Tracker::new();
    let (mut ck, first) = pmcf_core::solve_mcf_checkpointed(&mut tck, &base, &cfg);
    first.expect("base bench instance is feasible");
    let mut work_res_total = 0u64;
    let mut work_fresh_total = 0u64;
    let wall = Instant::now();
    let mut played = 0usize;
    for _ in 0..churn_rounds {
        let delta = random_delta(ck.problem(), 3, &mut rng);
        let w0 = tck.work();
        match ck.resolve(&mut tck, &delta) {
            Ok(sol) => {
                work_res_total += tck.work() - w0;
                let mut tf = Tracker::new();
                let fresh = solve_mcf(&mut tf, ck.problem(), &cfg)
                    .expect("resolve succeeded, fresh must too");
                work_fresh_total += tf.work();
                agreement &= sol.cost == fresh.cost;
                played += 1;
            }
            Err(_) => {
                // an infeasible window still mutates the checkpoint; the
                // sequence continues (and the next success re-arms warm)
                work_res_total += tck.work() - w0;
            }
        }
    }
    let churn_wall = wall.elapsed().as_secs_f64();
    stale_total += ck.stale_deletes();
    let churn_ratio = work_res_total as f64 / work_fresh_total.max(1) as f64;
    mdln!(
        args,
        "| churn | {played}×3 | {} | {work_res_total} | {work_fresh_total} | {churn_ratio:.4} | - | - | {churn_wall:.4} |",
        ck.problem().m()
    );
    artifact.row(vec![
        ("op", Json::from("churn")),
        ("delta_edges", Json::from(3 * played)),
        ("n", Json::from(n)),
        ("m", Json::from(ck.problem().m())),
        ("work_resolve", Json::from(work_res_total)),
        ("work_fresh", Json::from(work_fresh_total)),
        ("work_ratio", Json::from(churn_ratio)),
        ("wall_seconds", Json::from(churn_wall)),
    ]);

    let single_ok = single_edge_ratio < 0.5;
    mdln!(args);
    mdln!(
        args,
        "single-edge ratio {single_edge_ratio:.4} (<0.5: {single_ok}); objective agreement {agreement}; stale deletes {stale_total}"
    );
    artifact.set("single_edge_ratio_below_half", Json::from(single_ok));
    artifact.set("objective_agreement_ok", Json::from(agreement));
    artifact.set("stale_deletes_zero", Json::from(stale_total == 0));

    if let Some(run) = pmcf_obs::take_run_report("resolve") {
        if let Some(path) = pmcf_obs::report_output_path() {
            match run.write(&path) {
                Ok(()) => eprintln!(
                    "resolve: wrote {} run report to {}",
                    pmcf_obs::REPORT_SCHEMA,
                    path.display()
                ),
                Err(e) => eprintln!("resolve: run report write failed: {e}"),
            }
        }
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}
