//! Experiment T1-MCF / E-WORK — Table 1 (left): the parallel min-cost
//! flow landscape, measured.
//!
//! Rows per instance: sequential SSP (depth = work; the stand-in for the
//! near-linear sequential [CKL+22] row), the dense [LS14]-style IPM
//! (Θ(m)/iteration), our tuned reference, and the robust engine
//! (Theorem 1.2). All four solve each instance *exactly* (values cross
//! checked); work/depth come from the PRAM cost model.

use pmcf_baselines::ssp;
use pmcf_bench::{configs, fit_exponent};
use pmcf_core::solve_mcf;
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn main() {
    let mut args = std::env::args().skip(1);
    let max_n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(144);

    println!("## Table 1 (left) — min-cost flow: measured work and depth\n");
    println!("| n | m | algorithm | iterations | work | depth | cost |");
    println!("|---|---|---|---|---|---|---|");
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for &n in &[36usize, 64, 100, 144, 196, 256] {
        if n > max_n {
            break;
        }
        let m = generators::dense_m(n); // m ≈ n^1.5
        let p = generators::random_mcf(n, m, 8, 6, 42 + n as u64);
        // sequential baseline: SSP (work = depth = operation count proxy)
        let t0 = std::time::Instant::now();
        let opt = ssp::min_cost_flow(&p).expect("feasible");
        let ssp_ops = (p.m() as u64) * (p.n() as u64); // O(F·m)-style proxy
        println!(
            "| {n} | {m} | sequential SSP | — | {ssp_ops} | {ssp_ops} | {} |",
            opt.cost(&p)
        );
        let _ = t0;
        for (name, cfg) in configs() {
            let mut t = Tracker::new();
            let sol = solve_mcf(&mut t, &p, &cfg).expect("feasible");
            assert_eq!(sol.cost, opt.cost(&p), "exactness violated for {name}");
            println!(
                "| {n} | {m} | {name} | {} | {} | {} | {} |",
                sol.stats.iterations,
                t.work(),
                t.depth(),
                sol.cost
            );
            series
                .iter_mut()
                .find(|(s, _)| s == name)
                .map(|(_, v)| v.push((n as f64, t.work() as f64)))
                .unwrap_or_else(|| {
                    series.push((name.to_string(), vec![(n as f64, t.work() as f64)]))
                });
        }
    }
    // density sweep at fixed n: the robust-vs-dense gap must widen in m
    println!("\n## Density sweep at n = 64 (who wins as m grows)\n");
    println!("| m | dense [LS14] work | robust work | dense/robust |");
    println!("|---|---|---|---|");
    if max_n >= 64 {
        for &m in &[512usize, 1024, 2048, 4096] {
            let p = generators::random_mcf(64, m, 8, 6, 400 + m as u64);
            let opt = ssp::min_cost_flow(&p).expect("feasible");
            let mut works = Vec::new();
            for (name, cfg) in configs() {
                if name == "reference IPM" {
                    continue;
                }
                let mut t = Tracker::new();
                let sol = solve_mcf(&mut t, &p, &cfg).expect("feasible");
                assert_eq!(sol.cost, opt.cost(&p));
                works.push(t.work());
            }
            println!(
                "| {m} | {} | {} | {:.2} |",
                works[0],
                works[1],
                works[0] as f64 / works[1] as f64
            );
        }
    }

    println!("\n### Fitted work exponents (work ~ n^a at m = n^1.5)\n");
    for (name, pts) in &series {
        if pts.len() >= 3 {
            println!("- {name}: a ≈ {:.2}", fit_exponent(pts));
        }
    }
    println!("\nPaper: robust = Õ(m + n^1.5) = Õ(n^1.5) here; dense = Õ(m√n) = Õ(n^2).");
}
