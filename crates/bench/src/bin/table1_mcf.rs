//! Experiment T1-MCF / E-WORK — Table 1 (left): the parallel min-cost
//! flow landscape, measured.
//!
//! Rows per instance: sequential SSP (depth = work; the stand-in for the
//! near-linear sequential [CKL+22] row), the dense [LS14]-style IPM
//! (Θ(m)/iteration), our tuned reference, and the robust engine
//! (Theorem 1.2). All four solve each instance *exactly* (values cross
//! checked); work/depth come from the PRAM cost model.
//!
//! Flags: `[max_n] --seed <u64> --json <path>`. With `PMCF_PROFILE=1`
//! the robust engine's largest solve is span-profiled; the phase tree is
//! printed and embedded in the artifact. With `PMCF_CRITPATH=1` every
//! engine's largest solve additionally reports its critical path: the
//! per-span attribution of the depth total, printed as a top-K table and
//! embedded as `pmcf.critpath/v1` reports under the `critpath` key. With
//! `PMCF_TRACE=1` (or `=<path>`) the run writes a Perfetto-loadable
//! Chrome trace of the thread pool. With `PMCF_REPORT=<path>` the run
//! writes a unified `pmcf.report/v1` run report (span tree, critical
//! path, counters, pool telemetry, monitor verdicts, and the
//! per-iteration IPM convergence table) for `report_diff` triage. At workstation scale the solve's
//! epoch rebuilds (every `√n` iterations) outpace the 4× weight-class
//! drift a `HeavyHitter` class move needs, so the solve alone never
//! reaches the decremental expander path — the profiled run therefore
//! also drives a delete → prune → trim → unit-flow maintenance drill on
//! the same tracker so the artifact covers the whole stack.

use pmcf_baselines::ssp;
use pmcf_bench::{configs, fit_exponent, mdln, Artifact, BenchArgs, Json};
use pmcf_core::solve_mcf;
use pmcf_expander::DynamicExpanderDecomposition;
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    pmcf_obs::trace_init_from_env();
    pmcf_obs::report_init_from_env();
    let max_n = args.max_size_or(144);
    let seed = args.seed_or(42);
    let mut artifact = Artifact::for_run("table1_mcf", seed, &args);
    let mut profile = None;
    // per-engine critical-path report at the largest instance solved
    let mut critpaths: Vec<(String, pmcf_pram::CritPathReport)> = Vec::new();

    mdln!(
        args,
        "## Table 1 (left) — min-cost flow: measured work and depth\n"
    );
    mdln!(
        args,
        "| n | m | algorithm | iterations | work | depth | cost |"
    );
    mdln!(args, "|---|---|---|---|---|---|---|");
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut depth_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for &n in &[36usize, 64, 100, 144, 196, 256] {
        if n > max_n {
            break;
        }
        let m = generators::dense_m(n); // m ≈ n^1.5
        let p = generators::random_mcf(n, m, 8, 6, seed + n as u64);
        // sequential baseline: SSP (work = depth = operation count proxy)
        let opt = ssp::min_cost_flow(&p).expect("feasible");
        let ssp_ops = (p.m() as u64) * (p.n() as u64); // O(F·m)-style proxy
        mdln!(
            args,
            "| {n} | {m} | sequential SSP | — | {ssp_ops} | {ssp_ops} | {} |",
            opt.cost(&p)
        );
        artifact.row(vec![
            ("section", Json::from("table1")),
            ("n", Json::from(n)),
            ("m", Json::from(m)),
            ("algorithm", Json::from("sequential SSP")),
            ("work", Json::from(ssp_ops)),
            ("depth", Json::from(ssp_ops)),
            ("cost", Json::from(opt.cost(&p))),
        ]);
        for (name, cfg) in configs() {
            let mut t = tracker_from_env();
            let wall = std::time::Instant::now();
            let sol = solve_mcf(&mut t, &p, &cfg).expect("feasible");
            let wall = wall.elapsed().as_secs_f64();
            assert_eq!(sol.cost, opt.cost(&p), "exactness violated for {name}");
            let (work, depth) = (t.work(), t.depth());
            mdln!(
                args,
                "| {n} | {m} | {name} | {} | {work} | {depth} | {} |",
                sol.stats.iterations,
                sol.cost
            );
            artifact.row(vec![
                ("section", Json::from("table1")),
                ("n", Json::from(n)),
                ("m", Json::from(m)),
                ("algorithm", Json::from(name)),
                ("iterations", Json::from(sol.stats.iterations)),
                ("work", Json::from(work)),
                ("depth", Json::from(depth)),
                ("wall_seconds", Json::from(wall)),
                ("cost", Json::from(sol.cost)),
            ]);
            series
                .iter_mut()
                .find(|(s, _)| s == name)
                .map(|(_, v)| v.push((n as f64, work as f64)))
                .unwrap_or_else(|| series.push((name.to_string(), vec![(n as f64, work as f64)])));
            depth_series
                .iter_mut()
                .find(|(s, _)| s == name)
                .map(|(_, v)| v.push((n as f64, depth as f64)))
                .unwrap_or_else(|| {
                    depth_series.push((name.to_string(), vec![(n as f64, depth as f64)]))
                });
            // each engine's largest solve supplies its critical path
            if let Some(rep) = t.critpath_report() {
                critpaths.retain(|(s, _)| s != name);
                critpaths.push((name.to_string(), rep));
            }
            // keep the largest robust solve's tracker for the profile
            if cfg.engine == pmcf_core::Engine::Robust && t.is_profiled() {
                profile = Some((format!("{name}, n={n}, m={m}"), t));
            }
        }
    }
    // density sweep at fixed n: the robust-vs-dense gap must widen in m
    mdln!(args, "\n## Density sweep at n = 64 (who wins as m grows)\n");
    mdln!(
        args,
        "| m | dense [LS14] work | robust work | dense/robust |"
    );
    mdln!(args, "|---|---|---|---|");
    if max_n >= 64 {
        for &m in &[512usize, 1024, 2048, 4096] {
            let p = generators::random_mcf(64, m, 8, 6, seed * 10 + m as u64);
            let opt = ssp::min_cost_flow(&p).expect("feasible");
            let mut works = Vec::new();
            for (name, cfg) in configs() {
                if name == "reference IPM" {
                    continue;
                }
                let mut t = tracker_from_env();
                let sol = solve_mcf(&mut t, &p, &cfg).expect("feasible");
                assert_eq!(sol.cost, opt.cost(&p));
                works.push(t.work());
            }
            mdln!(
                args,
                "| {m} | {} | {} | {:.2} |",
                works[0],
                works[1],
                works[0] as f64 / works[1] as f64
            );
            artifact.row(vec![
                ("section", Json::from("density_sweep")),
                ("n", Json::from(64usize)),
                ("m", Json::from(m)),
                ("dense_work", Json::from(works[0])),
                ("robust_work", Json::from(works[1])),
                ("ratio", Json::from(works[0] as f64 / works[1] as f64)),
            ]);
        }
    }

    mdln!(
        args,
        "\n### Fitted work exponents (work ~ n^a at m = n^1.5)\n"
    );
    let mut exps: Vec<(String, Json)> = Vec::new();
    for (name, pts) in &series {
        if pts.len() >= 3 {
            let a = fit_exponent(pts);
            mdln!(args, "- {name}: a ≈ {a:.2}");
            exps.push((name.clone(), Json::F64(a)));
        }
    }
    artifact.set("exponents", Json::Obj(exps));
    mdln!(
        args,
        "\nPaper: robust = Õ(m + n^1.5) = Õ(n^1.5) here; dense = Õ(m√n) = Õ(n^2)."
    );

    mdln!(
        args,
        "\n### Fitted depth exponents (depth ~ n^a at m = n^1.5)\n"
    );
    let mut dexps: Vec<(String, Json)> = Vec::new();
    for (name, pts) in &depth_series {
        if pts.len() >= 3 {
            let a = fit_exponent(pts);
            mdln!(args, "- {name}: a ≈ {a:.2}");
            dexps.push((name.clone(), Json::F64(a)));
        }
    }
    artifact.set("depth_exponents", Json::Obj(dexps));
    mdln!(
        args,
        "\nPaper: the parallel IPMs run in Õ(√n) depth per iteration over \
         Õ(√n) iterations — charged depth should grow ~ n, far below work."
    );

    if !critpaths.is_empty() {
        mdln!(
            args,
            "\n## Critical-path depth attribution (largest solve)\n"
        );
        let mut cp: Vec<(String, Json)> = Vec::new();
        for (name, rep) in &critpaths {
            mdln!(args, "### {name}\n");
            mdln!(args, "{}", rep.to_markdown(10));
            cp.push((name.clone(), Json::Raw(rep.to_json())));
        }
        artifact.set("critpath", Json::Obj(cp));
    }

    if let Some((label, mut t)) = profile {
        // maintenance drill: exercise the decremental expander path
        // (delete → prune → trim → unit-flow) that the solve's epochs
        // never reach at this scale, so the profile covers the stack
        t.span("expander/maintenance", |t| {
            let g = generators::random_regular_ugraph(256, 8, seed);
            let mut d = DynamicExpanderDecomposition::new(256, 0.1, seed);
            let keys = d.insert_edges(t, g.edges());
            for chunk in keys.chunks(64).take(8) {
                d.delete_edges(t, chunk);
            }
        });
        if let Some(rep) = t.profile_report() {
            artifact.attach_profile_report(&label, &rep);
        }
        // PMCF_REPORT: fold the profiled tracker (spans, counters,
        // critpath) into the unified run report and write it out
        if let Some(mut run) = pmcf_obs::take_run_report("table1_mcf") {
            run.absorb_tracker(&t);
            if let Some(path) = pmcf_obs::report_output_path() {
                match run.write(&path) {
                    Ok(()) => eprintln!(
                        "table1_mcf: wrote {} run report to {}",
                        pmcf_obs::REPORT_SCHEMA,
                        path.display()
                    ),
                    Err(e) => eprintln!("table1_mcf: run report write failed: {e}"),
                }
            }
        }
    }
    artifact.emit(&args);
    pmcf_obs::trace_finish();
    pmcf_obs::finish();
}
