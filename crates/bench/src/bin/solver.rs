//! Experiment E-SOLVER — the Laplacian-solver reuse layer: warm starts,
//! preconditioner caching, and batched multi-RHS solves.
//!
//! Rows:
//! - `op=leverage` — a sketched leverage estimation (`r` independent CG
//!   solves through `solve_batch`): wall clock (advisory), charged
//!   work/depth, and total CG iterations.
//! - `op=cg_steady` — repeated workspace-pooled solves against a fixed
//!   diagonal after a warm-up solve, under the counting allocator:
//!   `allocs_per_iter` is the gated metric and must stay exactly 0
//!   (steady-state CG performs no heap allocation in the
//!   matvec/vector-op path).
//! - `op=ipm_cold` / `op=ipm_warm` — a full reference-IPM solve with
//!   warm starts off / on; `cg_iterations` is the gated metric (the
//!   reuse layer's whole point is to shrink it), `wall_seconds` the
//!   advisory wall-clock trend.
//!
//! Boolean invariants (a true→false flip fails the gate):
//! - `warm_start_reduction_ok` — warm-started solve spends ≤ 0.8× the
//!   cold CG iterations,
//! - `batch_matches_single` — `solve_batch` agrees with per-RHS
//!   `solve` to 1e-9,
//! - `parallel_cost_model_consistent` — charged work/depth are
//!   identical across repeat runs and across
//!   `ParMode::Sequential`/`ParMode::Forked` execution of the same
//!   branch program (thread scheduling must not leak into the model).
//!
//! Flags: `--seed <u64> --json <path>`; `PMCF_PROFILE=1` embeds the
//! span-tree profile of the leverage run; `PMCF_REPORT=<path>` writes a
//! unified `pmcf.report/v1` run report with the warm IPM run's spans and
//! per-iteration convergence table.

use pmcf_bench::{mdln, measure_allocs, Artifact, BenchArgs, Json};
use pmcf_core::init;
use pmcf_core::reference::{path_follow, PathFollowConfig};
use pmcf_graph::generators;
use pmcf_linalg::leverage::estimate_leverage;
use pmcf_linalg::solver::{LaplacianSolver, RhsSpec, SolverOpts};
use pmcf_pram::{Cost, ParMode, Tracker};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    pmcf_obs::report_init_from_env();
    let seed = args.seed_or(11);
    let mut artifact = Artifact::for_run("solver", seed, &args);
    artifact.set(
        "threads",
        Json::Str(rayon::current_num_threads().to_string()),
    );

    mdln!(args, "## E-SOLVER — Laplacian solver reuse layer\n");
    mdln!(
        args,
        "| op | n | m | wall_seconds | work | depth | cg_iterations | warm_start_hits |"
    );
    mdln!(args, "|---|---|---|---|---|---|---|---|");

    // ---- leverage estimation: r independent solves as one batch ----
    let (lev_n, lev_m) = (192usize, 2560usize);
    let g = generators::gnm_digraph(lev_n, lev_m, seed);
    let d: Vec<f64> = (0..lev_m)
        .map(|e| 0.5 + ((e * 37) % 100) as f64 / 25.0)
        .collect();
    let solver = LaplacianSolver::new(g, 0, SolverOpts::default());
    let mut profile = None;
    let run_leverage = || {
        let mut t = Tracker::profiled();
        let wall = Instant::now();
        let _ = estimate_leverage(&mut t, &solver, &d, 0.5, seed);
        (wall.elapsed().as_secs_f64(), t)
    };
    let (lev_wall, lev_t) = run_leverage();
    let lev_iters = counter(&lev_t, "solver.cg_iterations_total");
    mdln!(
        args,
        "| leverage | {lev_n} | {lev_m} | {lev_wall:.4} | {} | {} | {lev_iters} | 0 |",
        lev_t.work(),
        lev_t.depth(),
    );
    artifact.row(vec![
        ("op", Json::from("leverage")),
        ("n", Json::from(lev_n)),
        ("m", Json::from(lev_m)),
        ("wall_seconds", Json::from(lev_wall)),
        ("work", Json::from(lev_t.work())),
        ("depth", Json::from(lev_t.depth())),
        ("cg_iterations", Json::from(lev_iters)),
    ]);
    // charged costs must not depend on scheduling: a repeat run charges
    // the same work/depth bit for bit
    let (_, lev_t2) = run_leverage();
    let repeat_consistent = lev_t2.work() == lev_t.work() && lev_t2.depth() == lev_t.depth();
    if std::env::var_os("PMCF_PROFILE").is_some() {
        profile = Some((format!("leverage, n={lev_n}, m={lev_m}"), lev_t));
    }

    // ---- steady-state CG: zero heap allocations once the pool is warm ----
    // Same instance as the leverage run; fixed diagonal (pinned d_gen so
    // the preconditioner caches), no warm-start guess so every solve runs
    // the full CG loop. One warm-up solve populates the workspace, then
    // the measured solves must not touch the allocator at all: scratch
    // comes from the pool and the returned solution is handed back.
    let steady_b: Vec<f64> = {
        let mut b: Vec<f64> = (0..lev_n)
            .map(|v| ((v * 31 + 3) % 17) as f64 - 8.0)
            .collect();
        b[0] = 0.0;
        b
    };
    let steady_params = pmcf_linalg::solver::SolveParams {
        d_gen: Some(1),
        ..Default::default()
    };
    let steady_rounds = 16usize;
    // warm-up: builds the preconditioner and fills every buffer class
    {
        let mut t = Tracker::new();
        let (x, _) = solver.solve_with(&mut t, &d, &steady_b, &steady_params);
        solver.workspace().give(x);
    }
    let mut steady_t = Tracker::new();
    let steady_wall = Instant::now();
    let ((), steady_allocs) = measure_allocs(|| {
        for _ in 0..steady_rounds {
            let (x, _) = solver.solve_with(&mut steady_t, &d, &steady_b, &steady_params);
            solver.workspace().give(x);
        }
    });
    let steady_wall = steady_wall.elapsed().as_secs_f64();
    let steady_iters = {
        let mut t = Tracker::new();
        let (x, stats) = solver.solve_with(&mut t, &d, &steady_b, &steady_params);
        solver.workspace().give(x);
        stats.iterations as u64 * steady_rounds as u64
    };
    let allocs_per_iter = steady_allocs as f64 / steady_iters.max(1) as f64;
    let zero_alloc = steady_allocs == 0;
    mdln!(
        args,
        "| cg_steady | {lev_n} | {lev_m} | {steady_wall:.4} | {} | {} | {steady_iters} | 0 |",
        steady_t.work(),
        steady_t.depth(),
    );
    mdln!(
        args,
        "  (cg_steady: {steady_allocs} allocations over {steady_rounds} solves → {allocs_per_iter:.4} allocs/iter)"
    );
    artifact.row(vec![
        ("op", Json::from("cg_steady")),
        ("n", Json::from(lev_n)),
        ("m", Json::from(lev_m)),
        ("wall_seconds", Json::from(steady_wall)),
        ("work", Json::from(steady_t.work())),
        ("depth", Json::from(steady_t.depth())),
        ("cg_iterations", Json::from(steady_iters)),
        ("allocs", Json::from(steady_allocs)),
        ("allocs_per_iter", Json::from(allocs_per_iter)),
    ]);

    // ---- robust-IPM step kernel: keyed pair solve, zero allocations ----
    // The robust IPM solves exactly two systems per Newton step against a
    // slowly-changing diagonal (the epoch-persistent sparsifier): both
    // RHS checked out of the pool, warm-started from the previous step's
    // solutions, solved through the non-allocating pair path with a
    // pinned preconditioner generation. After one warm-up step the
    // measured steps must not touch the allocator at all — this is the
    // exact shape of `robust.rs`' inner loop.
    let rhs_c_src: Vec<f64> = {
        let mut b: Vec<f64> = (0..lev_n)
            .map(|v| ((v * 13 + 5) % 23) as f64 - 11.0)
            .collect();
        b[0] = 0.0;
        b
    };
    let pair_rounds = 16usize;
    let ws = solver.workspace();
    let mut prev_dy: Option<Vec<f64>> = None;
    let mut prev_dc: Option<Vec<f64>> = None;
    let run_step =
        |t: &mut Tracker, prev_dy: &mut Option<Vec<f64>>, prev_dc: &mut Option<Vec<f64>>| {
            let rhs_y = ws.take_copy(t, &steady_b);
            let rhs_c = ws.take_copy(t, &rhs_c_src);
            let sy = RhsSpec {
                b: &rhs_y,
                guess: prev_dy.as_deref(),
            };
            let sc = RhsSpec {
                b: &rhs_c,
                guess: prev_dc.as_deref(),
            };
            let ((dy, st_y), (dc, st_c)) =
                solver.solve_pair_keyed(t, &d, &sy, &sc, None, Some(1), Some(ws));
            ws.give(rhs_y);
            ws.give(rhs_c);
            if let Some(old) = prev_dy.replace(dy) {
                ws.give(old);
            }
            if let Some(old) = prev_dc.replace(dc) {
                ws.give(old);
            }
            st_y.iterations as u64 + st_c.iterations as u64
        };
    // warm-up: fills every pool class the step touches (two RHS + two
    // solutions in flight plus both branches' CG scratch), and lets the
    // pool's injector ring buffer reach steady capacity
    {
        let mut t = Tracker::new();
        run_step(&mut t, &mut prev_dy, &mut prev_dc);
        run_step(&mut t, &mut prev_dy, &mut prev_dc);
    }
    let mut pair_t = Tracker::new();
    let mut pair_iters = 0u64;
    let pair_wall = Instant::now();
    let ((), pair_allocs) = measure_allocs(|| {
        for _ in 0..pair_rounds {
            pair_iters += run_step(&mut pair_t, &mut prev_dy, &mut prev_dc);
        }
    });
    let pair_wall = pair_wall.elapsed().as_secs_f64();
    let pair_allocs_per_iter = pair_allocs as f64 / pair_iters.max(1) as f64;
    let robust_step_zero_alloc = pair_allocs == 0;
    mdln!(
        args,
        "| robust_step | {lev_n} | {lev_m} | {pair_wall:.4} | {} | {} | {pair_iters} | 0 |",
        pair_t.work(),
        pair_t.depth(),
    );
    mdln!(
        args,
        "  (robust_step: {pair_allocs} allocations over {pair_rounds} pair-solves → {pair_allocs_per_iter:.4} allocs/iter)"
    );
    artifact.row(vec![
        ("op", Json::from("robust_step")),
        ("n", Json::from(lev_n)),
        ("m", Json::from(lev_m)),
        ("wall_seconds", Json::from(pair_wall)),
        ("work", Json::from(pair_t.work())),
        ("depth", Json::from(pair_t.depth())),
        ("cg_iterations", Json::from(pair_iters)),
        ("allocs", Json::from(pair_allocs)),
        ("allocs_per_iter", Json::from(pair_allocs_per_iter)),
    ]);

    // ---- reference IPM, cold vs warm Newton solves ----
    let p = generators::random_mcf(32, 170, 4, 4, seed);
    let ext = init::extend(&p).expect("bench instance within magnitude bounds");
    let mu0 = init::initial_mu(&ext.prob, 0.25);
    let mu_end = init::final_mu(&ext.prob);
    let run_ipm = |warm: bool| {
        let mut t = Tracker::profiled();
        let cfg = PathFollowConfig {
            warm_start: warm,
            adaptive_tol: warm,
            ..PathFollowConfig::default()
        };
        let wall = Instant::now();
        let (_, stats) = path_follow(&mut t, &ext.prob, ext.x0.clone(), mu0, mu_end, &cfg);
        (stats, t, wall.elapsed().as_secs_f64())
    };
    let (cold_stats, cold_t, cold_wall) = run_ipm(false);
    let (warm_stats, warm_t, warm_wall) = run_ipm(true);
    let warm_hits = counter(&warm_t, "solver.warm_start_hits");
    for (op, stats, t, wall, hits) in [
        ("ipm_cold", &cold_stats, &cold_t, cold_wall, 0u64),
        ("ipm_warm", &warm_stats, &warm_t, warm_wall, warm_hits),
    ] {
        mdln!(
            args,
            "| {op} | {} | {} | {wall:.4} | {} | {} | {} | {hits} |",
            ext.prob.n(),
            ext.prob.m(),
            t.work(),
            t.depth(),
            stats.cg_iterations,
        );
        artifact.row(vec![
            ("op", Json::from(op)),
            ("n", Json::from(ext.prob.n())),
            ("m", Json::from(ext.prob.m())),
            ("wall_seconds", Json::from(wall)),
            ("work", Json::from(t.work())),
            ("depth", Json::from(t.depth())),
            ("cg_iterations", Json::from(stats.cg_iterations)),
            ("warm_start_hits", Json::from(hits)),
        ]);
    }
    let warm_ok = (warm_stats.cg_iterations as f64) <= 0.8 * cold_stats.cg_iterations as f64;

    // ---- batch vs single-RHS agreement ----
    let bg = generators::gnm_digraph(24, 80, seed + 1);
    let bd: Vec<f64> = (0..80)
        .map(|e| 0.4 + ((e * 13) % 50) as f64 / 20.0)
        .collect();
    let bsolver = LaplacianSolver::new(bg, 0, SolverOpts::default());
    let rhss: Vec<Vec<f64>> = (0..3)
        .map(|k| {
            let mut b: Vec<f64> = (0..24)
                .map(|v| ((v * (k + 2) + 7) % 11) as f64 - 5.0)
                .collect();
            let shift = b.iter().sum::<f64>() / 24.0;
            b.iter_mut().for_each(|x| *x -= shift);
            b[0] = 0.0;
            b
        })
        .collect();
    let specs: Vec<RhsSpec<'_>> = rhss.iter().map(|b| RhsSpec { b, guess: None }).collect();
    let mut t = Tracker::new();
    let batch = bsolver.solve_batch(&mut t, &bd, &specs, None);
    let batch_ok = rhss.iter().zip(&batch).all(|(b, (xb, _))| {
        let (xs, _) = bsolver.solve(&mut Tracker::new(), &bd, b);
        xs.iter().zip(xb).all(|(a, c)| (a - c).abs() <= 1e-9)
    });

    // ---- Sequential vs Forked branch execution charges identically ----
    let charge_program = |mode: ParMode| {
        let mut t = Tracker::profiled();
        t.parallel_in(mode, 4, |i, t| {
            t.span("branch", |t| {
                t.charge(Cost::par_for(3 + i as u64, Cost::par_flat(512)));
                t.counter("branches", 1);
            });
        });
        (t.work(), t.depth())
    };
    let modes_consistent = charge_program(ParMode::Sequential) == charge_program(ParMode::Forked);
    let cost_model_ok = repeat_consistent && modes_consistent;

    mdln!(args);
    mdln!(
        args,
        "warm CG iterations {} vs cold {} (reduction_ok={warm_ok}); batch_matches_single={batch_ok}; parallel_cost_model_consistent={cost_model_ok}",
        warm_stats.cg_iterations,
        cold_stats.cg_iterations,
    );
    artifact.set("warm_start_reduction_ok", Json::from(warm_ok));
    artifact.set("batch_matches_single", Json::from(batch_ok));
    artifact.set("parallel_cost_model_consistent", Json::from(cost_model_ok));
    artifact.set("cg_steady_zero_alloc", Json::from(zero_alloc));
    artifact.set("robust_step_zero_alloc", Json::from(robust_step_zero_alloc));

    if let Some((label, t)) = profile {
        artifact.attach_profile(&label, &t);
    }
    if let Some(mut run) = pmcf_obs::take_run_report("solver") {
        run.absorb_tracker(&warm_t);
        if let Some(path) = pmcf_obs::report_output_path() {
            match run.write(&path) {
                Ok(()) => eprintln!(
                    "solver: wrote {} run report to {}",
                    pmcf_obs::REPORT_SCHEMA,
                    path.display()
                ),
                Err(e) => eprintln!("solver: run report write failed: {e}"),
            }
        }
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}

/// A profiler counter of `t`, or 0 when the tracker is unprofiled.
fn counter(t: &Tracker, name: &str) -> u64 {
    t.profile_report()
        .and_then(|r| r.counters.get(name).copied())
        .unwrap_or(0)
}
