//! Experiments E-DYNX and E-PRUNE — Lemma 3.1 / Lemma 3.3.
//!
//! E-DYNX: amortized work per updated edge of the dynamic expander
//! decomposition should be roughly independent of the graph size and of
//! the batch count. E-PRUNE: the volume pruned by decremental updates is
//! proportional to the deleted volume, not the graph.
//!
//! Flags: `--seed <u64> --json <path>`; `PMCF_PROFILE=1` embeds the
//! span-tree profile of the last E-PRUNE run.

use pmcf_bench::{mdln, measure_allocs, Artifact, BenchArgs, Json};
use pmcf_ds::heavy_hitter::HeavyHitter;
use pmcf_expander::pruning::BoostedPruner;
use pmcf_expander::DynamicExpanderDecomposition;
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;
use pmcf_pram::Tracker;

/// Base-4 weight-class exponent, mirroring `HeavyHitter`'s private
/// bucketing (`g_e ∈ [4^c, 4^{c+1})`).
fn exponent_class(w: f64) -> i32 {
    w.log2().div_euclid(2.0).floor() as i32
}

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    let seed = args.seed_or(5);
    let mut artifact = Artifact::for_run("expander_dynamic", seed, &args);
    let mut profile = None;

    mdln!(
        args,
        "## E-DYNX — dynamic decomposition: amortized update work\n"
    );
    mdln!(
        args,
        "| n | m | batch size | batches | total work | work/edge | depth/batch |"
    );
    mdln!(args, "|---|---|---|---|---|---|---|");
    for &(n, m) in &[(128usize, 1024usize), (256, 2048), (512, 4096)] {
        let g = generators::gnm_ugraph(n, m, seed);
        for &batch in &[16usize, 64, 256] {
            let mut d = DynamicExpanderDecomposition::new(n, 0.1, seed + 4);
            let mut t = tracker_from_env();
            let mut batches = 0u64;
            for chunk in g.edges().chunks(batch) {
                let _ = d.insert_edges(&mut t, chunk);
                batches += 1;
            }
            mdln!(
                args,
                "| {n} | {m} | {batch} | {batches} | {} | {:.1} | {:.0} |",
                t.work(),
                t.work() as f64 / m as f64,
                t.depth() as f64 / batches as f64
            );
            artifact.row(vec![
                ("section", Json::from("dynx")),
                ("n", Json::from(n)),
                ("m", Json::from(m)),
                ("batch", Json::from(batch)),
                ("batches", Json::from(batches)),
                ("work", Json::from(t.work())),
                ("work_per_edge", Json::from(t.work() as f64 / m as f64)),
                (
                    "depth_per_batch",
                    Json::from(t.depth() as f64 / batches as f64),
                ),
            ]);
        }
    }

    mdln!(
        args,
        "\n## E-PRUNE — expander pruning: pruned volume ∝ deleted volume\n"
    );
    mdln!(
        args,
        "| n | deleted edges | pruned volume | ratio | work/deleted edge |"
    );
    mdln!(args, "|---|---|---|---|---|");
    for &n in &[128usize, 256, 512] {
        let g = generators::random_regular_ugraph(n, 8, seed.wrapping_sub(2));
        let mut p = BoostedPruner::new(g.clone(), 0.2);
        let mut t = tracker_from_env();
        let mut deleted = 0usize;
        let mut pruned_vol = 0usize;
        // scattered deletions (certificate routes, nothing pruned) …
        for b in 0..8 {
            let batch: Vec<usize> = (0..4).map(|i| (b * 31 + i * 7) % (n * 4)).collect();
            let r = p.delete_batch(&mut t, &batch);
            deleted += 4;
            pruned_vol += r.newly_pruned.len() * 8;
        }
        // … then detach whole vertices (their stars must be pruned)
        for v in (0..6usize).map(|i| i * 17 % n) {
            let star: Vec<usize> = g.neighbors(v).iter().map(|&(_, e)| e).collect();
            let r = p.delete_batch(&mut t, &star);
            deleted += star.len();
            pruned_vol += r.newly_pruned.len() * 8;
        }
        mdln!(
            args,
            "| {n} | {deleted} | {pruned_vol} | {:.2} | {:.0} |",
            pruned_vol as f64 / deleted as f64,
            t.work() as f64 / deleted as f64
        );
        artifact.row(vec![
            ("section", Json::from("prune")),
            ("n", Json::from(n)),
            ("deleted", Json::from(deleted)),
            ("pruned_volume", Json::from(pruned_vol)),
            ("ratio", Json::from(pruned_vol as f64 / deleted as f64)),
            (
                "work_per_deleted",
                Json::from(t.work() as f64 / deleted as f64),
            ),
        ]);
        if let Some(rep) = t.profile_report() {
            profile = Some((format!("E-PRUNE, n={n}"), rep));
        }
    }
    mdln!(
        args,
        "\nShape: work/edge and pruned/deleted stay bounded as n grows (Lemma 3.1/3.3)."
    );

    // ---- E-REINIT: in-place HeavyHitter reinitialization ----
    // Epoch-driven IPM loops rebuild their heavy-hitter index over fresh
    // weights every √n iterations; `reinitialize` must reuse the old
    // allocation footprint rather than paying construction again.
    mdln!(
        args,
        "\n## E-REINIT — HeavyHitter: fresh construction vs in-place reinit\n"
    );
    mdln!(
        args,
        "| n | m | scenario | fresh allocs | reinit allocs | ratio |"
    );
    mdln!(args, "|---|---|---|---|---|---|");
    for &(n, m) in &[(64usize, 512usize), (128, 1024)] {
        let g = generators::gnm_digraph(n, m, seed + 9);
        // Weights span 24 weight classes (base-4 exponents −8..15), so
        // the drift scenario can confine churn to a single class.
        let weights = |salt: u64| -> Vec<f64> {
            (0..m)
                .map(|e| {
                    let c = ((e as u64).wrapping_add(salt) % 24) as i32 - 8;
                    4.0f64.powi(c) * 1.5
                })
                .collect()
        };
        // Scenario "reseed": every class rebuilt (new seed), the win is
        // the reused allocation footprint. Scenario "drift": same seed,
        // one weight class jumps two classes up — the other 22 classes
        // are recognized as already in fresh-build state and skipped.
        let drift = |w: &[f64]| -> Vec<f64> {
            w.iter()
                .map(|&x| if exponent_class(x) == -8 { x * 16.0 } else { x })
                .collect()
        };
        for scenario in ["reseed", "drift"] {
            let mut t = Tracker::new();
            let (mut hh, _) =
                measure_allocs(|| HeavyHitter::initialize(&mut t, g.clone(), weights(0), seed));
            let (w1, s1) = if scenario == "reseed" {
                (weights(1), seed + 1)
            } else {
                (drift(&weights(0)), seed)
            };
            // One epoch step over identical new weights, both ways. The
            // fresh path must clone the host graph and weight vector
            // (initialize consumes both); the in-place path reuses the
            // whole footprint.
            let (_, fresh_allocs) =
                measure_allocs(|| HeavyHitter::initialize(&mut t, g.clone(), w1.clone(), s1));
            let (_, reinit_allocs) = measure_allocs(|| hh.reinitialize(&mut t, &w1, s1));
            let ratio = reinit_allocs as f64 / fresh_allocs.max(1) as f64;
            let reinit_leaner = reinit_allocs < fresh_allocs;
            mdln!(
                args,
                "| {n} | {m} | {scenario} | {fresh_allocs} | {reinit_allocs} | {ratio:.3} |"
            );
            artifact.row(vec![
                ("section", Json::from("reinit")),
                ("scenario", Json::from(scenario)),
                ("n", Json::from(n)),
                ("m", Json::from(m)),
                ("fresh_allocs", Json::from(fresh_allocs)),
                ("reinit_allocs", Json::from(reinit_allocs)),
                ("alloc_ratio", Json::from(ratio)),
                ("reinit_leaner", Json::from(reinit_leaner)),
            ]);
        }
    }
    mdln!(
        args,
        "\nGate: `reinit_leaner` must stay true — in-place reinit strictly \
         cheaper in allocations than a fresh build; under class drift the \
         unchanged-class skip should push the ratio far below 1."
    );

    if let Some((label, rep)) = profile {
        artifact.attach_profile_report(&label, &rep);
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}
