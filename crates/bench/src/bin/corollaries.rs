//! Experiments E-MATCH / E-SSSP / E-REACH — Corollaries 1.3–1.5:
//! correctness vs the combinatorial oracles plus measured work/depth.

use pmcf_baselines::{bellman_ford, bfs, hopcroft_karp};
use pmcf_core::corollaries::{bipartite_matching, negative_sssp, reachability};
use pmcf_core::SolverConfig;
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn main() {
    let cfg = SolverConfig::default();
    println!("## E-MATCH — bipartite matching (Corollary 1.3)\n");
    println!("| n_left | n_right | m | HK size | IPM size | IPM work | IPM depth |");
    println!("|---|---|---|---|---|---|---|");
    for &(nl, m) in &[(8usize, 24usize), (16, 64), (32, 160)] {
        let g = generators::random_bipartite(nl, nl, m, 3);
        let (want, _) = hopcroft_karp::max_matching(&g, nl);
        let mut t = Tracker::new();
        let (got, _) = bipartite_matching(&mut t, &g, nl, &cfg);
        assert_eq!(got, want);
        println!("| {nl} | {nl} | {m} | {want} | {got} | {} | {} |", t.work(), t.depth());
    }

    println!("\n## E-SSSP — negative-weight SSSP (Corollary 1.4)\n");
    println!("| n | m | matches Bellman-Ford | IPM work | IPM depth |");
    println!("|---|---|---|---|---|");
    for &(n, m) in &[(12usize, 36usize), (24, 96), (48, 240)] {
        let (g, w) = generators::random_negative_sssp(n, m, 6, 5);
        let want = bellman_ford::sssp(&g, &w, 0).unwrap();
        let mut t = Tracker::new();
        let got = negative_sssp(&mut t, &g, &w, 0, &cfg).unwrap();
        assert_eq!(got, want);
        println!("| {n} | {m} | yes | {} | {} |", t.work(), t.depth());
    }

    println!("\n## E-REACH — reachability (Corollary 1.5)\n");
    println!("| n | m | matches BFS | IPM work | IPM depth | BFS depth |");
    println!("|---|---|---|---|---|---|");
    for &k in &[4usize, 8] {
        let g = generators::chained_cliques(k, 5, 2);
        let want = bfs::reachable_seq(&g, 0);
        let mut t = Tracker::new();
        let got = reachability(&mut t, &g, 0, &cfg);
        assert_eq!(got, want);
        let mut tb = Tracker::new();
        let _ = bfs::reachable_par(&mut tb, &g, 0);
        println!(
            "| {} | {} | yes | {} | {} | {} |",
            g.n(),
            g.m(),
            t.work(),
            t.depth(),
            tb.depth()
        );
    }
}
