//! Experiments E-MATCH / E-SSSP / E-REACH — Corollaries 1.3–1.5:
//! correctness vs the combinatorial oracles plus measured work/depth.
//!
//! Flags: `--seed <u64> --json <path>`; `PMCF_PROFILE=1` embeds the
//! span-tree profile of the last reduction solve.

use pmcf_baselines::{bellman_ford, bfs, hopcroft_karp};
use pmcf_bench::{mdln, Artifact, BenchArgs, Json};
use pmcf_core::corollaries::{bipartite_matching, negative_sssp, reachability};
use pmcf_core::SolverConfig;
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;
use pmcf_pram::Tracker;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    let seed = args.seed_or(3);
    let mut artifact = Artifact::for_run("corollaries", seed, &args);
    let mut profile = None;

    let cfg = SolverConfig::default();
    mdln!(args, "## E-MATCH — bipartite matching (Corollary 1.3)\n");
    mdln!(
        args,
        "| n_left | n_right | m | HK size | IPM size | IPM work | IPM depth |"
    );
    mdln!(args, "|---|---|---|---|---|---|---|");
    for &(nl, m) in &[(8usize, 24usize), (16, 64), (32, 160)] {
        let g = generators::random_bipartite(nl, nl, m, seed);
        let (want, _) = hopcroft_karp::max_matching(&g, nl);
        let mut t = tracker_from_env();
        let (got, _) = bipartite_matching(&mut t, &g, nl, &cfg).expect("valid bipartite instance");
        assert_eq!(got, want);
        mdln!(
            args,
            "| {nl} | {nl} | {m} | {want} | {got} | {} | {} |",
            t.work(),
            t.depth()
        );
        artifact.row(vec![
            ("section", Json::from("matching")),
            ("n_left", Json::from(nl)),
            ("m", Json::from(m)),
            ("size", Json::from(got)),
            ("work", Json::from(t.work())),
            ("depth", Json::from(t.depth())),
        ]);
        if let Some(rep) = t.profile_report() {
            profile = Some((format!("bipartite matching, n_left={nl}, m={m}"), rep));
        }
    }

    mdln!(args, "\n## E-SSSP — negative-weight SSSP (Corollary 1.4)\n");
    mdln!(
        args,
        "| n | m | matches Bellman-Ford | IPM work | IPM depth |"
    );
    mdln!(args, "|---|---|---|---|---|");
    for &(n, m) in &[(12usize, 36usize), (24, 96), (48, 240)] {
        let (g, w) = generators::random_negative_sssp(n, m, 6, seed + 2);
        let want = bellman_ford::sssp(&g, &w, 0).unwrap();
        let mut t = tracker_from_env();
        let got = negative_sssp(&mut t, &g, &w, 0, &cfg).unwrap();
        assert_eq!(got, want);
        mdln!(args, "| {n} | {m} | yes | {} | {} |", t.work(), t.depth());
        artifact.row(vec![
            ("section", Json::from("sssp")),
            ("n", Json::from(n)),
            ("m", Json::from(m)),
            ("work", Json::from(t.work())),
            ("depth", Json::from(t.depth())),
        ]);
    }

    mdln!(args, "\n## E-REACH — reachability (Corollary 1.5)\n");
    mdln!(
        args,
        "| n | m | matches BFS | IPM work | IPM depth | BFS depth |"
    );
    mdln!(args, "|---|---|---|---|---|---|");
    for &k in &[4usize, 8] {
        let g = generators::chained_cliques(k, 5, seed.wrapping_sub(1));
        let want = bfs::reachable_seq(&g, 0);
        let mut t = tracker_from_env();
        let got = reachability(&mut t, &g, 0, &cfg).expect("valid reachability instance");
        assert_eq!(got, want);
        let mut tb = Tracker::new();
        let _ = bfs::reachable_par(&mut tb, &g, 0);
        mdln!(
            args,
            "| {} | {} | yes | {} | {} | {} |",
            g.n(),
            g.m(),
            t.work(),
            t.depth(),
            tb.depth()
        );
        artifact.row(vec![
            ("section", Json::from("reachability")),
            ("n", Json::from(g.n())),
            ("m", Json::from(g.m())),
            ("work", Json::from(t.work())),
            ("depth", Json::from(t.depth())),
            ("bfs_depth", Json::from(tb.depth())),
        ]);
    }

    if let Some((label, rep)) = profile {
        artifact.attach_profile_report(&label, &rep);
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}
