//! Experiment A-ABL — the §2.2 design-choice ablation: sampling `R`
//! through the expander-decomposition-backed HeavySampler vs a dense
//! `Θ(m)` correction of every coordinate.

use pmcf_core::init;
use pmcf_core::reference::PathFollowConfig;
use pmcf_core::robust;
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn main() {
    println!("## A-ABL — δ_x sparsification ablation (robust engine)\n");
    println!("| n | m | sampler | iterations | corrected coords/iter | work | work/iter |");
    println!("|---|---|---|---|---|---|---|");
    for &(n, m) in &[(64usize, 1024usize), (64, 4096), (144, 1728)] {
        let p = generators::random_mcf(n, m, 4, 3, 9);
        let ext = init::extend(&p);
        let mu0 = init::initial_mu(&ext.prob, 0.25);
        let mu_end = init::final_mu(&ext.prob);
        for (label, dense) in [("HeavySampler (paper)", false), ("dense Θ(m)", true)] {
            let cfg = PathFollowConfig {
                dense_sampling: dense,
                ..PathFollowConfig::default()
            };
            let mut t = Tracker::new();
            let (st, stats) =
                robust::path_follow(&mut t, &ext.prob, ext.x0.clone(), mu0, mu_end, &cfg);
            let ok = pmcf_core::rounding::round_to_optimal(&ext.prob, &st.x).is_some();
            assert!(ok);
            println!(
                "| {n} | {m} | {label} | {} | {:.0} | {} | {:.0} |",
                stats.iterations,
                stats.sampled_coords as f64 / stats.iterations.max(1) as f64,
                t.work(),
                t.work() as f64 / stats.iterations.max(1) as f64
            );
        }
    }
    println!("\nShape: the dense variant corrects all m coordinates per iteration;");
    println!("the HeavySampler touches Õ(m/√n + n) (paper §2.2, Theorem E.2).");
    println!("Total work is solver-dominated at these sizes, so the step's own");
    println!("footprint — the corrected-coordinates column — carries the claim.");
}
