//! Experiment A-ABL — the §2.2 design-choice ablation: sampling `R`
//! through the expander-decomposition-backed HeavySampler vs a dense
//! `Θ(m)` correction of every coordinate.
//!
//! Flags: `--seed <u64> --json <path>`; `PMCF_PROFILE=1` embeds the
//! span-tree profile of the last HeavySampler run.

use pmcf_bench::{mdln, Artifact, BenchArgs, Json};
use pmcf_core::init;
use pmcf_core::reference::PathFollowConfig;
use pmcf_core::robust;
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    let seed = args.seed_or(9);
    let mut artifact = Artifact::for_run("ablation_sampler", seed, &args);
    let mut profile = None;

    mdln!(
        args,
        "## A-ABL — δ_x sparsification ablation (robust engine)\n"
    );
    mdln!(
        args,
        "| n | m | sampler | iterations | corrected coords/iter | work | work/iter |"
    );
    mdln!(args, "|---|---|---|---|---|---|---|");
    for &(n, m) in &[(64usize, 1024usize), (64, 4096), (144, 1728)] {
        let p = generators::random_mcf(n, m, 4, 3, seed);
        let ext = init::extend(&p).expect("bench instance within magnitude bounds");
        let mu0 = init::initial_mu(&ext.prob, 0.25);
        let mu_end = init::final_mu(&ext.prob);
        for (label, dense) in [("HeavySampler (paper)", false), ("dense Θ(m)", true)] {
            let cfg = PathFollowConfig {
                dense_sampling: dense,
                seed,
                ..PathFollowConfig::default()
            };
            let mut t = tracker_from_env();
            let (st, stats) =
                robust::path_follow(&mut t, &ext.prob, ext.x0.clone(), mu0, mu_end, &cfg);
            let ok = pmcf_core::rounding::round_to_optimal(&ext.prob, &st.x).is_ok();
            assert!(ok);
            let coords_per_iter = stats.sampled_coords as f64 / stats.iterations.max(1) as f64;
            mdln!(
                args,
                "| {n} | {m} | {label} | {} | {coords_per_iter:.0} | {} | {:.0} |",
                stats.iterations,
                t.work(),
                t.work() as f64 / stats.iterations.max(1) as f64
            );
            artifact.row(vec![
                ("n", Json::from(n)),
                ("m", Json::from(m)),
                ("sampler", Json::from(label)),
                ("iterations", Json::from(stats.iterations)),
                ("coords_per_iter", Json::from(coords_per_iter)),
                ("work", Json::from(t.work())),
                ("depth", Json::from(t.depth())),
            ]);
            if !dense {
                if let Some(rep) = t.profile_report() {
                    profile = Some((format!("{label}, n={n}, m={m}"), rep));
                }
            }
        }
    }
    mdln!(
        args,
        "\nShape: the dense variant corrects all m coordinates per iteration;"
    );
    mdln!(
        args,
        "the HeavySampler touches Õ(m/√n + n) (paper §2.2, Theorem E.2)."
    );
    mdln!(
        args,
        "Total work is solver-dominated at these sizes, so the step's own"
    );
    mdln!(
        args,
        "footprint — the corrected-coordinates column — carries the claim."
    );

    if let Some((label, rep)) = profile {
        artifact.attach_profile_report(&label, &rep);
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}
