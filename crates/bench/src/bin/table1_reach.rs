//! Experiment T1-REACH / E-REACH — Table 1 (right): reachability.
//!
//! Parallel BFS has `O(m)` work but `Θ(diameter)` depth; on the
//! high-diameter chained-clique family the IPM route (Corollary 1.5)
//! keeps depth `Õ(√n)` at `Õ(m + n^1.5)` work. Both must agree exactly.

use pmcf_baselines::bfs;
use pmcf_core::corollaries::reachability;
use pmcf_core::SolverConfig;
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn main() {
    let mut args = std::env::args().skip(1);
    let max_blocks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    println!("## Table 1 (right) — reachability: measured work and depth\n");
    println!("| n | m | diameter≈ | algorithm | work | depth |");
    println!("|---|---|---|---|---|---|");
    for &k in &[4usize, 8, 16, 32] {
        if k > max_blocks {
            break;
        }
        let c = 6; // clique size
        let g = generators::chained_cliques(k, c, 7);
        let (n, m) = (g.n(), g.m());
        let mut tb = Tracker::new();
        let (bfs_mask, levels) = bfs::reachable_par(&mut tb, &g, 0);
        println!(
            "| {n} | {m} | {} | parallel BFS | {} | {} |",
            2 * k,
            tb.work(),
            tb.depth()
        );
        let _ = levels;
        let mut ti = Tracker::new();
        let ipm_mask = reachability(&mut ti, &g, 0, &SolverConfig::default());
        assert_eq!(ipm_mask, bfs_mask, "reachability mismatch at k={k}");
        println!(
            "| {n} | {m} | {} | IPM (Cor. 1.5) | {} | {} |",
            2 * k,
            ti.work(),
            ti.depth()
        );
    }
    println!("\nShape: BFS depth grows linearly with the diameter (∝ n);");
    println!("the IPM depth grows with √n·polylog — the crossover the paper claims.");
}
