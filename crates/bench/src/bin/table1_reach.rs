//! Experiment T1-REACH / E-REACH — Table 1 (right): reachability.
//!
//! Parallel BFS has `O(m)` work but `Θ(diameter)` depth; on the
//! high-diameter chained-clique family the IPM route (Corollary 1.5)
//! keeps depth `Õ(√n)` at `Õ(m + n^1.5)` work. Both must agree exactly.
//!
//! Flags: `[max_blocks] --seed <u64> --json <path>`.

use pmcf_baselines::bfs;
use pmcf_bench::{mdln, Artifact, BenchArgs, Json};
use pmcf_core::corollaries::reachability;
use pmcf_core::SolverConfig;
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;
use pmcf_pram::Tracker;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    let max_blocks = args.max_size_or(16);
    let seed = args.seed_or(7);
    let mut artifact = Artifact::for_run("table1_reach", seed, &args);
    let mut profile = None;

    mdln!(
        args,
        "## Table 1 (right) — reachability: measured work and depth\n"
    );
    mdln!(args, "| n | m | diameter≈ | algorithm | work | depth |");
    mdln!(args, "|---|---|---|---|---|---|");
    for &k in &[4usize, 8, 16, 32] {
        if k > max_blocks {
            break;
        }
        let c = 6; // clique size
        let g = generators::chained_cliques(k, c, seed);
        let (n, m) = (g.n(), g.m());
        let mut tb = Tracker::new();
        let (bfs_mask, levels) = bfs::reachable_par(&mut tb, &g, 0);
        mdln!(
            args,
            "| {n} | {m} | {} | parallel BFS | {} | {} |",
            2 * k,
            tb.work(),
            tb.depth()
        );
        artifact.row(vec![
            ("n", Json::from(n)),
            ("m", Json::from(m)),
            ("diameter", Json::from(2 * k)),
            ("algorithm", Json::from("parallel BFS")),
            ("work", Json::from(tb.work())),
            ("depth", Json::from(tb.depth())),
        ]);
        let _ = levels;
        let mut ti = tracker_from_env();
        let ipm_mask = reachability(&mut ti, &g, 0, &SolverConfig::default())
            .expect("valid reachability instance");
        assert_eq!(ipm_mask, bfs_mask, "reachability mismatch at k={k}");
        mdln!(
            args,
            "| {n} | {m} | {} | IPM (Cor. 1.5) | {} | {} |",
            2 * k,
            ti.work(),
            ti.depth()
        );
        artifact.row(vec![
            ("n", Json::from(n)),
            ("m", Json::from(m)),
            ("diameter", Json::from(2 * k)),
            ("algorithm", Json::from("IPM (Cor. 1.5)")),
            ("work", Json::from(ti.work())),
            ("depth", Json::from(ti.depth())),
        ]);
        if let Some(rep) = ti.profile_report() {
            profile = Some((format!("IPM reachability, n={n}, m={m}"), rep));
        }
    }
    mdln!(
        args,
        "\nShape: BFS depth grows linearly with the diameter (∝ n);"
    );
    mdln!(
        args,
        "the IPM depth grows with √n·polylog — the crossover the paper claims."
    );

    if let Some((label, rep)) = profile {
        artifact.attach_profile_report(&label, &rep);
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}
