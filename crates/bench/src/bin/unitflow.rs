//! Experiment E-UF — Lemma 3.11: ParallelUnitFlow's work scales with the
//! injected demand (`‖Δ‖₀`-ish), not with the host graph size.

use pmcf_expander::unit_flow::{parallel_unit_flow, UnitFlowProblem, UnitFlowState};
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn main() {
    println!("## E-UF — unit flow: work vs demand size and graph size\n");
    println!("| n | m | sources | demand | work | depth | sweeps |");
    println!("|---|---|---|---|---|---|---|");
    for &n in &[256usize, 1024, 4096] {
        let g = generators::random_regular_ugraph(n, 8, 1);
        for &k in &[1usize, 8, 32] {
            let alive = vec![true; g.n()];
            let edge_ok = vec![true; g.m()];
            let p = UnitFlowProblem {
                g: &g,
                alive: &alive,
                edge_ok: &edge_ok,
                cap: 10.0,
                height: 50,
            };
            let mut s = UnitFlowState::new(g.n(), g.m());
            // each source injects far more than its own sink can take,
            // forcing the flow to spread through the expander (total
            // demand stays below the global sink capacity rate·2m)
            let sources: Vec<(usize, f64)> =
                (0..k).map(|i| ((i * 37) % n, 12.0)).collect();
            let mut t = Tracker::new();
            let out = parallel_unit_flow(&mut t, &p, &mut s, &sources, 0.5, 50_000);
            assert!(out.remaining_excess < 1e-9, "unroutable at n={n} k={k}");
            println!(
                "| {n} | {} | {k} | {:.0} | {} | {} | {} |",
                g.m(),
                12.0 * k as f64,
                t.work(),
                t.depth(),
                out.sweeps
            );
        }
    }
    println!("\nShape: at fixed sources work is flat in n; work grows ~linearly in demand.");
}
