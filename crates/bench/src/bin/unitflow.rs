//! Experiment E-UF — Lemma 3.11: ParallelUnitFlow's work scales with the
//! injected demand (`‖Δ‖₀`-ish), not with the host graph size.
//!
//! Flags: `--seed <u64> --json <path>`; `PMCF_PROFILE=1` embeds the
//! span-tree profile of the last run.

use pmcf_bench::{mdln, Artifact, BenchArgs, Json};
use pmcf_expander::unit_flow::{parallel_unit_flow, UnitFlowProblem, UnitFlowState};
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    let seed = args.seed_or(1);
    let mut artifact = Artifact::for_run("unitflow", seed, &args);
    let mut profile = None;

    mdln!(
        args,
        "## E-UF — unit flow: work vs demand size and graph size\n"
    );
    mdln!(args, "| n | m | sources | demand | work | depth | sweeps |");
    mdln!(args, "|---|---|---|---|---|---|---|");
    for &n in &[256usize, 1024, 4096] {
        let g = generators::random_regular_ugraph(n, 8, seed);
        for &k in &[1usize, 8, 32] {
            let alive = vec![true; g.n()];
            let edge_ok = vec![true; g.m()];
            let p = UnitFlowProblem {
                g: &g,
                alive: &alive,
                edge_ok: &edge_ok,
                cap: 10.0,
                height: 50,
            };
            let mut s = UnitFlowState::new(g.n(), g.m());
            // each source injects far more than its own sink can take,
            // forcing the flow to spread through the expander (total
            // demand stays below the global sink capacity rate·2m)
            let sources: Vec<(usize, f64)> = (0..k).map(|i| ((i * 37) % n, 12.0)).collect();
            let mut t = tracker_from_env();
            let out = parallel_unit_flow(&mut t, &p, &mut s, &sources, 0.5, 50_000);
            assert!(out.remaining_excess < 1e-9, "unroutable at n={n} k={k}");
            mdln!(
                args,
                "| {n} | {} | {k} | {:.0} | {} | {} | {} |",
                g.m(),
                12.0 * k as f64,
                t.work(),
                t.depth(),
                out.sweeps
            );
            artifact.row(vec![
                ("n", Json::from(n)),
                ("m", Json::from(g.m())),
                ("sources", Json::from(k)),
                ("demand", Json::from(12.0 * k as f64)),
                ("work", Json::from(t.work())),
                ("depth", Json::from(t.depth())),
                ("sweeps", Json::from(out.sweeps)),
            ]);
            if let Some(rep) = t.profile_report() {
                profile = Some((format!("unit flow, n={n}, sources={k}"), rep));
            }
        }
    }
    mdln!(
        args,
        "\nShape: at fixed sources work is flat in n; work grows ~linearly in demand."
    );

    if let Some((label, rep)) = profile {
        artifact.attach_profile_report(&label, &rep);
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}
