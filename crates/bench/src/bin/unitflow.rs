//! Experiment E-UF — Lemma 3.11: ParallelUnitFlow's work scales with the
//! injected demand (`‖Δ‖₀`-ish), not with the host graph size.
//!
//! Also E-UNITFLOW — the pooled scratch-state rows: steady-state
//! `UnitFlowState::take`/`give` cycles must hit the allocator zero
//! times (`allocs_per_iter == 0`, gated), with an advisory row for the
//! full routing call (whose level buckets may still allocate).
//!
//! Flags: `--seed <u64> --json <path>`; `PMCF_PROFILE=1` embeds the
//! span-tree profile of the last run; `PMCF_REPORT=<path>` writes a
//! unified `pmcf.report/v1` run report.

use pmcf_bench::{mdln, measure_allocs, Artifact, BenchArgs, Json};
use pmcf_expander::unit_flow::{parallel_unit_flow, UnitFlowProblem, UnitFlowState};
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    pmcf_obs::report_init_from_env();
    let seed = args.seed_or(1);
    let mut artifact = Artifact::for_run("unitflow", seed, &args);
    let mut profile = None;
    let mut last_tracker = None;

    mdln!(
        args,
        "## E-UF — unit flow: work vs demand size and graph size\n"
    );
    mdln!(args, "| n | m | sources | demand | work | depth | sweeps |");
    mdln!(args, "|---|---|---|---|---|---|---|");
    for &n in &[256usize, 1024, 4096] {
        let g = generators::random_regular_ugraph(n, 8, seed);
        for &k in &[1usize, 8, 32] {
            let alive = vec![true; g.n()];
            let edge_ok = vec![true; g.m()];
            let p = UnitFlowProblem {
                g: &g,
                alive: &alive,
                edge_ok: &edge_ok,
                cap: 10.0,
                height: 50,
            };
            let mut s = UnitFlowState::new(g.n(), g.m());
            // each source injects far more than its own sink can take,
            // forcing the flow to spread through the expander (total
            // demand stays below the global sink capacity rate·2m)
            let sources: Vec<(usize, f64)> = (0..k).map(|i| ((i * 37) % n, 12.0)).collect();
            let mut t = tracker_from_env();
            let out = parallel_unit_flow(&mut t, &p, &mut s, &sources, 0.5, 50_000);
            assert!(out.remaining_excess < 1e-9, "unroutable at n={n} k={k}");
            mdln!(
                args,
                "| {n} | {} | {k} | {:.0} | {} | {} | {} |",
                g.m(),
                12.0 * k as f64,
                t.work(),
                t.depth(),
                out.sweeps
            );
            artifact.row(vec![
                ("n", Json::from(n)),
                ("m", Json::from(g.m())),
                ("sources", Json::from(k)),
                ("demand", Json::from(12.0 * k as f64)),
                ("work", Json::from(t.work())),
                ("depth", Json::from(t.depth())),
                ("sweeps", Json::from(out.sweeps)),
            ]);
            if let Some(rep) = t.profile_report() {
                profile = Some((format!("unit flow, n={n}, sources={k}"), rep));
            }
            last_tracker = Some(t);
        }
    }
    mdln!(
        args,
        "\nShape: at fixed sources work is flat in n; work grows ~linearly in demand."
    );

    // E-UNITFLOW — pooled scratch state: after warmup, a take/give cycle
    // is a pop + in-place reset + push, so steady-state checkout must be
    // allocation-free.
    mdln!(args, "\n## E-UNITFLOW — pooled scratch reuse\n");
    mdln!(
        args,
        "| n | m | cycles | allocs | allocs/iter | zero-alloc |"
    );
    mdln!(args, "|---|---|---|---|---|---|");
    {
        let (n, m) = (4096usize, 4096 * 4);
        // warmup: park a max-sized state (and give the pool's own vec its
        // capacity) so the measured loop is pure reuse
        UnitFlowState::give(UnitFlowState::new(n, m));
        let cycles = 16u64;
        let (_, allocs) = measure_allocs(|| {
            for _ in 0..cycles {
                let s = UnitFlowState::take(n, m);
                UnitFlowState::give(s);
            }
        });
        let per_iter = allocs as f64 / cycles as f64;
        let zero = allocs == 0;
        mdln!(
            args,
            "| {n} | {m} | {cycles} | {allocs} | {per_iter:.2} | {zero} |"
        );
        artifact.row(vec![
            ("section", Json::from("pool")),
            ("scenario", Json::from("take_give_cycle")),
            ("n", Json::from(n)),
            ("m", Json::from(m)),
            ("rounds", Json::from(cycles)),
            ("allocs_per_iter", Json::from(per_iter)),
            ("pool_zero_alloc", Json::from(zero)),
        ]);

        // advisory: a full routing call on a pooled state (level buckets
        // and active-set growth may allocate; tracked, not gated)
        let g = generators::random_regular_ugraph(256, 8, seed);
        let alive = vec![true; g.n()];
        let edge_ok = vec![true; g.m()];
        let p = UnitFlowProblem {
            g: &g,
            alive: &alive,
            edge_ok: &edge_ok,
            cap: 10.0,
            height: 50,
        };
        let mut s = UnitFlowState::take(g.n(), g.m());
        let mut t = tracker_from_env();
        // prime one run so buckets reach steady-state size, then measure
        let _ = parallel_unit_flow(&mut t, &p, &mut s, &[(0, 6.0)], 0.5, 50_000);
        s.reset(g.n(), g.m());
        let (_, call_allocs) =
            measure_allocs(|| parallel_unit_flow(&mut t, &p, &mut s, &[(0, 6.0)], 0.5, 50_000));
        UnitFlowState::give(s);
        mdln!(
            args,
            "\nFull `parallel_unit_flow` call on a pooled state: {call_allocs} allocations (advisory)."
        );
        artifact.row(vec![
            ("section", Json::from("pool")),
            ("scenario", Json::from("full_call")),
            ("n", Json::from(g.n())),
            ("m", Json::from(g.m())),
            ("full_call_allocs", Json::from(call_allocs)),
        ]);
    }

    if let Some((label, rep)) = profile {
        artifact.attach_profile_report(&label, &rep);
    }
    if let Some(mut run) = pmcf_obs::take_run_report("unitflow") {
        if let Some(t) = last_tracker.as_ref() {
            run.absorb_tracker(t);
        }
        if let Some(path) = pmcf_obs::report_output_path() {
            match run.write(&path) {
                Ok(()) => eprintln!(
                    "unitflow: wrote {} run report to {}",
                    pmcf_obs::REPORT_SCHEMA,
                    path.display()
                ),
                Err(e) => eprintln!("unitflow: run report write failed: {e}"),
            }
        }
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}
