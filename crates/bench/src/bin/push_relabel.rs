//! Experiment E-PR — the parallel push-relabel max-flow engine
//! (Baumstark–Blelloch–Shun synchronous rounds) under the charged
//! work/depth model.
//!
//! Rows (one per `(n, m)` size on random max-flow instances): flow
//! `value`, charged `work`/`depth`, advisory `wall_seconds` and
//! `pushes_per_second`, and the operation counters
//! `pushes`/`relabels`/`global_relabels`/`rounds`. Every row is
//! cross-checked against Dinic (`dinic_agrees`, a gated boolean).
//!
//! Top-level gated metrics:
//! - `work_exponent` / `depth_exponent` — log-log fits of charged
//!   work and depth against `n` (m = 4n): depth must stay strongly
//!   sublinear in the instance size (the point of the synchronous
//!   bucket-parallel discharge rounds),
//! - `dinic_agrees_all` — all sizes agree with Dinic,
//! - `cost_model_mode_invariant` — charged work/depth and all
//!   operation counters are bit-identical between
//!   `ParMode::Sequential` and `ParMode::Forked` execution.
//!
//! Flags: `--seed <u64> --json <path>`; `PMCF_PROFILE=1` embeds the
//! span-tree profile of the largest run; `PMCF_REPORT=<path>` writes a
//! unified `pmcf.report/v1` run report.

use pmcf_baselines::{dinic, push_relabel};
use pmcf_bench::{fit_exponent, mdln, Artifact, BenchArgs, Json};
use pmcf_graph::generators;
use pmcf_pram::profile::tracker_from_env;
use pmcf_pram::{ParMode, Tracker};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    pmcf_obs::init_from_env();
    pmcf_obs::report_init_from_env();
    let seed = args.seed_or(7);
    let mut artifact = Artifact::for_run("push_relabel", seed, &args);
    artifact.set(
        "threads",
        Json::Str(rayon::current_num_threads().to_string()),
    );
    let mut profile = None;
    let mut last_tracker = None;

    mdln!(args, "## E-PR — parallel push-relabel max flow\n");
    mdln!(
        args,
        "| n | m | value | work | depth | wall_seconds | pushes | relabels | global_relabels | rounds | dinic_agrees |"
    );
    mdln!(args, "|---|---|---|---|---|---|---|---|---|---|---|");

    let mut work_pts = Vec::new();
    let mut depth_pts = Vec::new();
    let mut all_agree = true;
    for &n in &[64usize, 128, 256, 512] {
        let m = 8 * n;
        let (g, cap) = generators::random_max_flow(n, m, 16, seed);
        let mut t = tracker_from_env();
        let t0 = Instant::now();
        let out = push_relabel::max_flow(&mut t, &g, &cap, 0, n - 1)
            .unwrap_or_else(|e| panic!("push_relabel rejected n={n}: {e}"));
        let wall = t0.elapsed().as_secs_f64();
        let (dv, _) = dinic::max_flow(&g, &cap, 0, n - 1);
        let agrees = out.value == dv;
        all_agree &= agrees;
        work_pts.push((n as f64, t.work() as f64));
        depth_pts.push((n as f64, t.depth() as f64));
        let pps = out.stats.pushes as f64 / wall.max(1e-12);
        mdln!(
            args,
            "| {n} | {m} | {} | {} | {} | {wall:.6} | {} | {} | {} | {} | {agrees} |",
            out.value,
            t.work(),
            t.depth(),
            out.stats.pushes,
            out.stats.relabels,
            out.stats.global_relabels,
            out.stats.rounds
        );
        artifact.row(vec![
            ("n", Json::from(n)),
            ("m", Json::from(m)),
            ("value", Json::from(out.value)),
            ("work", Json::from(t.work())),
            ("depth", Json::from(t.depth())),
            ("wall_seconds", Json::from(wall)),
            ("pushes", Json::from(out.stats.pushes)),
            ("relabels", Json::from(out.stats.relabels)),
            ("global_relabels", Json::from(out.stats.global_relabels)),
            ("rounds", Json::from(out.stats.rounds)),
            ("pushes_per_second", Json::from(pps)),
            ("dinic_agrees", Json::from(agrees)),
        ]);
        if let Some(rep) = t.profile_report() {
            profile = Some((format!("push-relabel, n={n}, m={m}"), rep));
        }
        last_tracker = Some(t);
    }

    let we = fit_exponent(&work_pts);
    let de = fit_exponent(&depth_pts);
    mdln!(
        args,
        "\nFitted scaling (m = 8n): work ~ n^{we:.3}, depth ~ n^{de:.3}."
    );
    artifact.set("work_exponent", Json::from(we));
    artifact.set("depth_exponent", Json::from(de));
    artifact.set("dinic_agrees_all", Json::from(all_agree));

    // the charged cost model may not depend on whether the fork-join
    // tree actually forked: rerun one size in both modes explicitly
    let mode_ok = {
        let n = 128;
        let (g, cap) = generators::random_max_flow(n, 4 * n, 8, seed);
        let mut ta = Tracker::new();
        let a =
            push_relabel::max_flow_in(&mut ta, ParMode::Sequential, &g, &cap, 0, n - 1).unwrap();
        let mut tb = Tracker::new();
        let b = push_relabel::max_flow_in(&mut tb, ParMode::Forked, &g, &cap, 0, n - 1).unwrap();
        a.value == b.value
            && a.x == b.x
            && a.stats == b.stats
            && ta.work() == tb.work()
            && ta.depth() == tb.depth()
    };
    mdln!(
        args,
        "Sequential vs Forked charged cost identical: {mode_ok}."
    );
    artifact.set("cost_model_mode_invariant", Json::from(mode_ok));

    if let Some((label, rep)) = profile {
        artifact.attach_profile_report(&label, &rep);
    }
    if let Some(mut run) = pmcf_obs::take_run_report("push_relabel") {
        if let Some(t) = last_tracker.as_ref() {
            run.absorb_tracker(t);
        }
        if let Some(path) = pmcf_obs::report_output_path() {
            match run.write(&path) {
                Ok(()) => eprintln!(
                    "push_relabel: wrote {} run report to {}",
                    pmcf_obs::REPORT_SCHEMA,
                    path.display()
                ),
                Err(e) => eprintln!("push_relabel: run report write failed: {e}"),
            }
        }
    }
    artifact.emit(&args);
    pmcf_obs::finish();
}
