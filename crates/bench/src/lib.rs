#![warn(missing_docs)]
//! # pmcf-bench — experiment harnesses
//!
//! One binary per experiment id of DESIGN.md §5 plus shared helpers.
//! Each binary prints a markdown table comparable to the paper's
//! exhibits; EXPERIMENTS.md records the paper-vs-measured analysis.

use pmcf_core::reference::PathFollowConfig;
use pmcf_core::{Engine, SolverConfig};

pub mod alloc_counter;
pub mod artifact;
pub mod gate;

pub use alloc_counter::{alloc_bytes, alloc_count, measure_allocs};
pub use artifact::{Artifact, BenchArgs, Json};

/// The three solver rows of Table 1 (left).
pub fn configs() -> Vec<(&'static str, SolverConfig)> {
    vec![
        (
            "dense IPM [LS14]",
            SolverConfig {
                engine: Engine::Reference,
                path: PathFollowConfig {
                    tau_refresh: 1,
                    ..PathFollowConfig::default()
                },
            },
        ),
        (
            "reference IPM",
            SolverConfig {
                engine: Engine::Reference,
                path: PathFollowConfig::default(),
            },
        ),
        (
            "robust IPM (this paper)",
            SolverConfig {
                engine: Engine::Robust,
                path: PathFollowConfig::default(),
            },
        ),
    ]
}

/// Fit `log y = a·log x + b` over points; returns the exponent `a`.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_fit_recovers_power_law() {
        let pts: Vec<(f64, f64)> = (1..10)
            .map(|i| (i as f64, (i as f64).powf(1.5) * 7.0))
            .collect();
        assert!((fit_exponent(&pts) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn three_solver_rows() {
        assert_eq!(configs().len(), 3);
    }
}
