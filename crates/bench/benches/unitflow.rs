//! Criterion benches for ParallelUnitFlow (E-UF).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmcf_expander::unit_flow::{parallel_unit_flow, UnitFlowProblem, UnitFlowState};
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn bench_unit_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_flow");
    for &n in &[512usize, 2048] {
        let g = generators::random_regular_ugraph(n, 8, 1);
        group.bench_with_input(BenchmarkId::new("route_64_units", n), &g, |b, g| {
            let alive = vec![true; g.n()];
            let edge_ok = vec![true; g.m()];
            b.iter(|| {
                let p = UnitFlowProblem {
                    g,
                    alive: &alive,
                    edge_ok: &edge_ok,
                    cap: 10.0,
                    height: 50,
                };
                let mut s = UnitFlowState::new(g.n(), g.m());
                let mut t = Tracker::disabled();
                parallel_unit_flow(&mut t, &p, &mut s, &[(0, 64.0)], 0.5, 50_000)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unit_flow);
criterion_main!(benches);
