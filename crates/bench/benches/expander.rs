//! Criterion benches for the dynamic expander decomposition (E-DYNX).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmcf_expander::DynamicExpanderDecomposition;
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("expander_dynamic");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let g = generators::gnm_ugraph(n, n * 8, 5);
        group.bench_with_input(BenchmarkId::new("insert_all_batched", n), &g, |b, g| {
            b.iter(|| {
                let mut d = DynamicExpanderDecomposition::new(g.n(), 0.1, 9);
                let mut t = Tracker::disabled();
                for chunk in g.edges().chunks(64) {
                    let _ = d.insert_edges(&mut t, chunk);
                }
                d.edge_count()
            })
        });
        group.bench_with_input(BenchmarkId::new("delete_batches", n), &g, |b, g| {
            let mut d = DynamicExpanderDecomposition::new(g.n(), 0.1, 9);
            let mut t = Tracker::disabled();
            let keys = d.insert_edges(&mut t, g.edges());
            b.iter(|| {
                let mut d2 = DynamicExpanderDecomposition::new(g.n(), 0.1, 9);
                let k2 = d2.insert_edges(&mut t, g.edges());
                d2.delete_edges(&mut t, &k2[0..32]);
                d2.edge_count()
            });
            let _ = keys;
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
