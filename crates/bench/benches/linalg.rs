//! Criterion benches for the SDD solver (E-SOLVER / Lemma A.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmcf_graph::generators;
use pmcf_linalg::solver::{LaplacianSolver, SolverOpts};
use pmcf_pram::Tracker;

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdd_solver");
    for &(n, m) in &[(256usize, 2048usize), (1024, 16384)] {
        let g = generators::gnm_digraph(n, m, 3);
        let solver = LaplacianSolver::new(g, 0, SolverOpts::default());
        let d = vec![1.0; m];
        let mut b = vec![0.0; n];
        b[1] = 1.0;
        b[n - 1] = -1.0;
        group.bench_with_input(BenchmarkId::new("pcg", m), &solver, |bch, solver| {
            bch.iter(|| solver.solve(&mut Tracker::disabled(), &d, &b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
