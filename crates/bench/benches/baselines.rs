//! Criterion benches for the combinatorial baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmcf_baselines::{bfs, dinic, ssp};
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    for &n in &[64usize, 256] {
        let m = generators::dense_m(n);
        let p = generators::random_mcf(n, m, 8, 6, 7);
        group.bench_with_input(BenchmarkId::new("ssp", n), &p, |b, p| {
            b.iter(|| ssp::min_cost_flow(p).unwrap())
        });
        let (g, cap) = generators::random_max_flow(n, m, 8, 7);
        group.bench_with_input(BenchmarkId::new("dinic", n), &(g, cap), |b, (g, cap)| {
            b.iter(|| dinic::max_flow(g, cap, 0, g.n() - 1))
        });
        let gr = generators::chained_cliques(n / 8, 8, 7);
        group.bench_with_input(BenchmarkId::new("parallel_bfs", n), &gr, |b, gr| {
            b.iter(|| bfs::reachable_par(&mut Tracker::disabled(), gr, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
