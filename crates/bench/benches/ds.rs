//! Criterion benches for the IPM data structures (E-HH and friends).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmcf_ds::heavy_hitter::HeavyHitter;
use pmcf_ds::tau_sampler::TauSampler;
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn bench_heavy_hitter(c: &mut Criterion) {
    let mut group = c.benchmark_group("heavy_hitter");
    group.sample_size(20);
    for &(n, m) in &[(128usize, 1024usize), (256, 4096)] {
        let g = generators::gnm_digraph(n, m, 1);
        let mut t = Tracker::disabled();
        let hh = HeavyHitter::initialize(&mut t, g.clone(), vec![1.0; m], 2);
        // flat query (empty answer) — the output-sensitive fast path
        let flat = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("query_flat", m), &hh, |b, hh| {
            b.iter(|| hh.heavy_query(&mut Tracker::disabled(), &flat, 0.5))
        });
        // hot-vertex query — answer ∝ one vertex's degree
        let mut hot = vec![0.0; n];
        hot[3] = 10.0;
        group.bench_with_input(BenchmarkId::new("query_hot", m), &hh, |b, hh| {
            b.iter(|| hh.heavy_query(&mut Tracker::disabled(), &hot, 0.5))
        });
    }
    group.finish();
}

fn bench_tau_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("tau_sampler");
    for &m in &[4096usize, 65536] {
        let tau = vec![0.01f64; m];
        group.bench_with_input(BenchmarkId::new("sample", m), &tau, |b, tau| {
            let mut t = Tracker::disabled();
            let mut s = TauSampler::initialize(&mut t, 64, tau.clone(), 1);
            b.iter(|| s.sample(&mut Tracker::disabled(), 1.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heavy_hitter, bench_tau_sampler);
criterion_main!(benches);
