//! Criterion wall-clock benches for the solver engines (T1-MCF rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmcf_baselines::ssp;
use pmcf_core::reference::PathFollowConfig;
use pmcf_core::{solve_mcf, Engine, SolverConfig};
use pmcf_graph::generators;
use pmcf_pram::Tracker;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcf");
    group.sample_size(10);
    for &n in &[16usize, 36] {
        let m = generators::dense_m(n);
        let p = generators::random_mcf(n, m, 6, 4, 31 + n as u64);
        group.bench_with_input(BenchmarkId::new("ssp", n), &p, |b, p| {
            b.iter(|| ssp::min_cost_flow(p).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reference_ipm", n), &p, |b, p| {
            b.iter(|| {
                let mut t = Tracker::disabled();
                solve_mcf(&mut t, p, &SolverConfig::default()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("robust_ipm", n), &p, |b, p| {
            b.iter(|| {
                let mut t = Tracker::disabled();
                let cfg = SolverConfig {
                    engine: Engine::Robust,
                    path: PathFollowConfig::default(),
                };
                solve_mcf(&mut t, p, &cfg).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
