//! Property tests for the bench regression gate: measurement noise of
//! ±5% must never fail the gate, while a synthetic 2× work regression
//! must always be flagged — across randomly shaped artifacts.

use pmcf_bench::gate::{gate, parse_artifact, GateConfig, Severity};
use pmcf_obs::json::JsonValue;
use proptest::prelude::*;

/// Build a `pmcf.bench/v1` artifact with `rows` (solver, work, depth,
/// iterations) entries and a fitted exponent.
fn artifact(rows: &[(String, u64, u64, u64)], exponent: f64) -> JsonValue {
    let body: Vec<String> = rows
        .iter()
        .map(|(s, w, d, it)| {
            format!(
                r#"{{"solver":"{s}","n":32,"m":128,"work":{w},"depth":{d},"iterations":{it},"wall_seconds":0.1}}"#
            )
        })
        .collect();
    let src = format!(
        r#"{{"schema":"pmcf.bench/v1","bench":"prop","seed":7,"work_exponent":{exponent:e},"rows":[{}]}}"#,
        body.join(",")
    );
    parse_artifact(&src).expect("synthetic artifact parses")
}

fn scale(v: u64, factor: f64) -> u64 {
    ((v as f64) * factor).round().max(1.0) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ±5% multiplicative noise on every metric of every row passes the
    /// default thresholds.
    #[test]
    fn noise_within_five_percent_passes(
        base_work in 1_000u64..1_000_000,
        base_depth in 100u64..10_000,
        iters in 10u64..500,
        noise in 0.95f64..1.05,
        rows in 1usize..5,
    ) {
        let baseline: Vec<(String, u64, u64, u64)> = (0..rows)
            .map(|i| (format!("solver{i}"), base_work * (i as u64 + 1), base_depth, iters))
            .collect();
        let candidate: Vec<(String, u64, u64, u64)> = baseline
            .iter()
            .map(|(s, w, d, it)| {
                (s.clone(), scale(*w, noise), scale(*d, noise), scale(*it, noise))
            })
            .collect();
        let report = gate(
            &artifact(&baseline, 1.5),
            &artifact(&candidate, 1.5 * noise),
            &GateConfig::default(),
        )
        .unwrap();
        prop_assert!(
            report.passed() && report.findings.is_empty(),
            "noise {noise:.3} produced findings:\n{}",
            report.to_markdown()
        );
    }

    /// Doubling the work of any one row always fails the gate, and the
    /// finding names that row's work metric.
    #[test]
    fn doubled_work_always_flagged(
        base_work in 1_000u64..1_000_000,
        base_depth in 100u64..10_000,
        iters in 10u64..500,
        rows in 1usize..5,
        victim_seed in 0u64..1_000,
    ) {
        let baseline: Vec<(String, u64, u64, u64)> = (0..rows)
            .map(|i| (format!("solver{i}"), base_work + i as u64, base_depth, iters))
            .collect();
        let victim = (victim_seed as usize) % rows;
        let candidate: Vec<(String, u64, u64, u64)> = baseline
            .iter()
            .enumerate()
            .map(|(i, (s, w, d, it))| {
                let w = if i == victim { w * 2 } else { *w };
                (s.clone(), w, *d, *it)
            })
            .collect();
        let report = gate(
            &artifact(&baseline, 1.5),
            &artifact(&candidate, 1.5),
            &GateConfig::default(),
        )
        .unwrap();
        prop_assert!(!report.passed(), "2x work passed:\n{}", report.to_markdown());
        prop_assert!(
            report
                .failures()
                .any(|f| f.metric == "work" && f.row.contains(&format!("solver{victim}"))),
            "wrong finding:\n{}",
            report.to_markdown()
        );
    }

    /// The gate's verdict is a pure function of the two artifacts:
    /// re-running it yields an identical report.
    #[test]
    fn verdict_is_deterministic(
        work in 1_000u64..1_000_000,
        factor in 0.5f64..2.5,
    ) {
        let base = artifact(&[("s".to_string(), work, 100, 50)], 1.5);
        let cand = artifact(&[("s".to_string(), scale(work, factor), 100, 50)], 1.5);
        let cfg = GateConfig::default();
        let a = gate(&base, &cand, &cfg).unwrap();
        let b = gate(&base, &cand, &cfg).unwrap();
        prop_assert_eq!(a.passed(), b.passed());
        prop_assert_eq!(a.findings.len(), b.findings.len());
        for (x, y) in a.findings.iter().zip(&b.findings) {
            prop_assert_eq!(&x.metric, &y.metric);
            prop_assert_eq!(x.severity == Severity::Fail, y.severity == Severity::Fail);
        }
        // and the threshold itself is sharp: > work_ratio iff flagged
        let flagged = a.failures().any(|f| f.metric == "work");
        let ratio = scale(work, factor) as f64 / work as f64;
        prop_assert_eq!(flagged, ratio > cfg.work_ratio);
    }
}
