//! Cross-crate stress test of the Lemma 3.1 dynamic expander
//! decomposition under a long adaptive-ish update stream.

use pmcf_expander::conductance::find_sparse_cut;
use pmcf_expander::DynamicExpanderDecomposition;
use pmcf_graph::UGraph;
use pmcf_pram::Tracker;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn long_mixed_update_stream_preserves_all_invariants() {
    let n = 96;
    let mut d = DynamicExpanderDecomposition::new(n, 0.1, 42);
    let mut t = Tracker::new();
    let mut rng = SmallRng::seed_from_u64(1);
    let mut alive: Vec<u64> = Vec::new();
    for round in 0..30 {
        // insert a batch
        let batch: Vec<(usize, usize)> = (0..12)
            .map(|_| {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n);
                if u == v {
                    v = (v + 1) % n;
                }
                (u, v)
            })
            .collect();
        alive.extend(d.insert_edges(&mut t, &batch));
        // delete a few
        if round % 2 == 1 && alive.len() > 20 {
            let mut del = Vec::new();
            for _ in 0..6 {
                let i = rng.gen_range(0..alive.len());
                del.push(alive.swap_remove(i));
            }
            d.delete_edges(&mut t, &del);
        }
        // invariant: partition covers exactly the alive edges
        let total: usize = d.parts().iter().map(|p| p.len()).sum();
        assert_eq!(total, alive.len(), "round {round}");
        assert_eq!(d.edge_count(), alive.len(), "round {round}");
    }
    // invariant: multi-edge parts have no very sparse cut
    for part in d.parts() {
        if part.len() < 4 {
            continue;
        }
        let edges: Vec<(usize, usize)> = part.iter().map(|&(_, e)| e).collect();
        let sub = UGraph::from_edges(n, edges);
        assert!(
            find_sparse_cut(&sub, 0.02, 5).is_none(),
            "a part lost expansion"
        );
    }
    // invariant: vertex multiplicity stays near-linear
    assert!(d.vertex_multiplicity() <= n * 12);
}

#[test]
fn deleting_every_edge_empties_the_structure() {
    let n = 32;
    let g = pmcf_graph::generators::random_regular_ugraph(n, 6, 3);
    let mut d = DynamicExpanderDecomposition::new(n, 0.1, 7);
    let mut t = Tracker::new();
    let keys = d.insert_edges(&mut t, g.edges());
    for chunk in keys.chunks(16) {
        d.delete_edges(&mut t, chunk);
    }
    assert_eq!(d.edge_count(), 0);
    assert!(d.parts().is_empty());
}
