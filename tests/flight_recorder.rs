//! End-to-end flight recorder coverage: a recorded solve on seed
//! instances must produce a `pmcf.events/v1` stream on which every
//! invariant monitor reports `ok`, and the JSONL round trip must
//! preserve the verdicts.

use pmcf_core::init;
use pmcf_core::reference::PathFollowConfig;
use pmcf_core::trace::TraceRecorder;
use pmcf_graph::generators;
use pmcf_obs::monitor::{all_ok, run_monitors, to_markdown};
use pmcf_obs::{json, FlightRecorder};
use pmcf_pram::Tracker;

fn record_solve(engine: &str, seed: u64) -> (Vec<pmcf_obs::Event>, u64) {
    pmcf_obs::install(FlightRecorder::new(pmcf_obs::recorder::DEFAULT_CAPACITY));
    let p = generators::random_mcf(10, 36, 4, 3, seed);
    let ext = init::extend(&p).unwrap();
    let mu0 = init::initial_mu(&ext.prob, 0.25);
    let mu_end = init::final_mu(&ext.prob);
    let mut t = Tracker::profiled();
    let mut trace = TraceRecorder::new();
    match engine {
        "reference" => {
            let _ = pmcf_core::reference::path_follow_traced(
                &mut t,
                &ext.prob,
                ext.x0.clone(),
                mu0,
                mu_end,
                &PathFollowConfig::default(),
                Some(&mut trace),
            );
        }
        "robust" => {
            let _ = pmcf_core::robust::path_follow(
                &mut t,
                &ext.prob,
                ext.x0.clone(),
                mu0,
                mu_end,
                &PathFollowConfig::default(),
            );
        }
        other => panic!("unknown engine {other}"),
    }
    let rec = pmcf_obs::uninstall().expect("recorder installed");
    (rec.snapshot(), rec.dropped())
}

#[test]
fn reference_solve_recording_passes_all_monitors() {
    let (events, _) = record_solve("reference", 1);
    assert!(!events.is_empty());
    assert!(events.iter().any(|e| e.kind == "solve.start"));
    assert!(events.iter().any(|e| e.kind == "ipm.iter"));
    assert!(events.iter().any(|e| e.kind == "ipm.trace"));
    assert!(events.iter().any(|e| e.kind == "ipm.centered"));
    assert!(events.iter().any(|e| e.kind == "solve.end"));
    let verdicts = run_monitors(&events);
    assert!(
        all_ok(&verdicts),
        "monitor violations:\n{}",
        to_markdown(&verdicts)
    );
    // every monitor actually saw events on a traced reference solve
    for v in &verdicts {
        if v.monitor != "conductance-certified" {
            assert!(v.checked > 0, "{} checked nothing", v.monitor);
        }
    }
}

#[test]
fn robust_solve_recording_passes_all_monitors() {
    let (events, _) = record_solve("robust", 2);
    assert!(events.iter().any(|e| e.kind == "ipm.iter"));
    assert!(events.iter().any(|e| e.kind == "ipm.epoch"));
    let verdicts = run_monitors(&events);
    assert!(
        all_ok(&verdicts),
        "monitor violations:\n{}",
        to_markdown(&verdicts)
    );
}

#[test]
fn recording_survives_jsonl_round_trip_with_same_verdicts() {
    pmcf_obs::install(FlightRecorder::new(8192));
    let p = generators::random_mcf(8, 24, 3, 3, 5);
    let ext = init::extend(&p).unwrap();
    let mu0 = init::initial_mu(&ext.prob, 0.25);
    let mut t = Tracker::new();
    let _ = pmcf_core::reference::path_follow(
        &mut t,
        &ext.prob,
        ext.x0.clone(),
        mu0,
        mu0 / 1e4,
        &PathFollowConfig::default(),
    );
    let rec = pmcf_obs::uninstall().unwrap();
    let direct = run_monitors(&rec.snapshot());
    let (parsed, dropped) = json::parse_recording(&rec.to_jsonl()).unwrap();
    assert_eq!(dropped, rec.dropped());
    let replayed = run_monitors(&parsed);
    assert_eq!(direct, replayed);
    assert!(all_ok(&replayed));
}

#[test]
fn expander_maintenance_is_certified_under_recording() {
    pmcf_obs::install(FlightRecorder::new(8192));
    let mut d = pmcf_expander::DynamicExpanderDecomposition::new(48, 0.1, 3);
    let mut t = Tracker::new();
    let g = generators::gnm_ugraph(48, 240, 4);
    let keys = d.insert_edges(&mut t, g.edges());
    d.delete_edges(&mut t, &keys[0..20]);
    let rec = pmcf_obs::uninstall().unwrap();
    let events = rec.snapshot();
    let rebuilds = events
        .iter()
        .filter(|e| e.kind == "expander.rebuild")
        .count();
    assert!(rebuilds > 0, "no rebuild events recorded");
    // at least one rebuild actually spot-checked a part
    assert!(
        events
            .iter()
            .filter(|e| e.kind == "expander.rebuild")
            .any(|e| e.num("checked_parts").unwrap_or(0.0) > 0.0),
        "certification never ran"
    );
    let verdicts = run_monitors(&events);
    assert!(
        all_ok(&verdicts),
        "monitor violations:\n{}",
        to_markdown(&verdicts)
    );
}
