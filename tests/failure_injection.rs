//! Failure injection and pathological-instance battery: the solver must
//! either produce the certified optimum or cleanly report infeasibility,
//! never panic or return a wrong answer.

use pmcf_baselines::ssp;
use pmcf_core::{solve_mcf, McfError, SolverConfig};
use pmcf_graph::{generators, DiGraph, McfProblem};
use pmcf_pram::Tracker;

fn check(p: &McfProblem, label: &str) {
    let want = ssp::min_cost_flow(p);
    let mut t = Tracker::new();
    let got = solve_mcf(&mut t, p, &SolverConfig::default());
    match (want, got) {
        (Some(w), Ok(g)) => {
            assert!(g.flow.is_feasible(p), "{label}: infeasible output");
            assert_eq!(g.cost, w.cost(p), "{label}: wrong cost");
        }
        (None, Err(McfError::Infeasible)) => {}
        (w, g) => panic!(
            "{label}: oracle feasible={} but solver said {:?}",
            w.is_some(),
            g.map(|s| s.cost)
        ),
    }
}

#[test]
fn single_edge_graphs() {
    let g = DiGraph::from_edges(2, vec![(0, 1)]);
    check(
        &McfProblem::new(g.clone(), vec![5], vec![3], vec![-5, 5]),
        "saturated single edge",
    );
    check(
        &McfProblem::new(g.clone(), vec![5], vec![-3], vec![0, 0]),
        "negative-cost circulation on a single edge (none possible)",
    );
    check(
        &McfProblem::new(g, vec![5], vec![3], vec![-6, 6]),
        "over-capacity demand (infeasible)",
    );
}

#[test]
fn path_graphs_and_bottlenecks() {
    let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    check(
        &McfProblem::new(
            g.clone(),
            vec![9, 1, 9, 9],
            vec![1, 1, 1, 1],
            vec![-1, 0, 0, 0, 1],
        ),
        "tight middle bottleneck",
    );
    check(
        &McfProblem::new(g, vec![9, 0, 9, 9], vec![1, 1, 1, 1], vec![-1, 0, 0, 0, 1]),
        "zero-capacity cut (infeasible)",
    );
}

#[test]
fn complete_graph_with_all_negative_costs() {
    let mut edges = Vec::new();
    for u in 0..5 {
        for v in 0..5 {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    let m = edges.len();
    let g = DiGraph::from_edges(5, edges);
    check(
        &McfProblem::circulation(g, vec![2; m], vec![-1; m]),
        "all-negative complete circulation",
    );
}

#[test]
fn parallel_edges_with_different_costs() {
    let g = DiGraph::from_edges(2, vec![(0, 1), (0, 1), (0, 1)]);
    check(
        &McfProblem::new(g, vec![2, 2, 2], vec![5, 1, 3], vec![-4, 4]),
        "parallel edges must fill cheapest first",
    );
}

#[test]
fn zero_cost_everything() {
    let p = generators::random_mcf(8, 24, 4, 0, 3);
    check(&p, "all-zero costs");
}

#[test]
fn extreme_capacity_spread() {
    let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
    check(
        &McfProblem::new(
            g,
            vec![1_000_000, 1_000_000, 1],
            vec![1, 1, 0],
            vec![-1_000_000, 0, 1_000_000],
        ),
        "million-unit flow",
    );
}

#[test]
fn demands_on_isolated_vertices() {
    let g = DiGraph::from_edges(4, vec![(0, 1)]);
    check(
        &McfProblem::new(g.clone(), vec![3], vec![1], vec![-1, 1, 0, 0]),
        "isolated vertices with zero demand",
    );
    check(
        &McfProblem::new(g, vec![3], vec![1], vec![-1, 0, 0, 1]),
        "demand on an isolated vertex (infeasible)",
    );
}

#[test]
fn twenty_random_stress_instances() {
    for seed in 100..120 {
        let n = 6 + (seed as usize) % 5;
        let p = generators::random_mcf(n, 3 * n, 4, 4, seed);
        check(&p, &format!("stress seed {seed}"));
    }
}
