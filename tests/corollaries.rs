//! Cross-crate tests of the paper's Corollaries 1.3–1.5 reductions.

use pmcf_baselines::{bellman_ford, bfs, dinic, hopcroft_karp};
use pmcf_core::corollaries::{bipartite_matching, negative_sssp, reachability};
use pmcf_core::{max_flow, SolverConfig};
use pmcf_graph::generators;
use pmcf_pram::Tracker;

#[test]
fn max_flow_equals_dinic_across_instances() {
    for seed in 0..5 {
        let (g, cap) = generators::random_max_flow(12, 40, 6, seed);
        let (want, _) = dinic::max_flow(&g, &cap, 0, 11);
        let mut t = Tracker::new();
        let (_, got) = max_flow(&mut t, &g, &cap, 0, 11, &SolverConfig::default()).unwrap();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn matching_equals_hopcroft_karp_across_instances() {
    for seed in 0..5 {
        let g = generators::random_bipartite(7, 9, 25, seed);
        let (want, _) = hopcroft_karp::max_matching(&g, 7);
        let mut t = Tracker::new();
        let (got, _) = bipartite_matching(&mut t, &g, 7, &SolverConfig::default()).unwrap();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn sssp_equals_bellman_ford_across_instances() {
    for seed in 0..5 {
        let (g, w) = generators::random_negative_sssp(12, 30, 6, seed);
        let want = bellman_ford::sssp(&g, &w, 0).unwrap();
        let mut t = Tracker::new();
        let got = negative_sssp(&mut t, &g, &w, 0, &SolverConfig::default()).unwrap();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn reachability_equals_bfs_on_hard_instances() {
    // chained cliques (high diameter) and random digraphs
    let cases = vec![
        generators::chained_cliques(4, 4, 1),
        generators::gnm_digraph(16, 40, 2),
        generators::grid_digraph(4, 4),
    ];
    for (i, g) in cases.into_iter().enumerate() {
        let want = bfs::reachable_seq(&g, 0);
        let mut t = Tracker::new();
        let got = reachability(&mut t, &g, 0, &SolverConfig::default()).unwrap();
        assert_eq!(got, want, "case {i}");
    }
}
