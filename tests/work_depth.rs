//! Scaling assertions on the PRAM cost model: the shapes the paper
//! claims, verified loosely (constants free, exponents bounded).

use pmcf_baselines::bfs;
use pmcf_core::{solve_mcf, SolverConfig};
use pmcf_graph::generators;
use pmcf_pram::Tracker;

#[test]
fn solver_depth_is_far_below_work() {
    let p = generators::random_mcf(16, 64, 5, 4, 3);
    let mut t = Tracker::new();
    let _ = solve_mcf(&mut t, &p, &SolverConfig::default()).unwrap();
    assert!(
        t.depth() * 10 < t.work(),
        "depth {} vs work {}",
        t.depth(),
        t.work()
    );
}

#[test]
fn bfs_depth_grows_with_diameter_ipm_does_not_blow_up() {
    // double the chain length: BFS depth ~doubles
    let short = generators::chained_cliques(6, 5, 1);
    let long = generators::chained_cliques(12, 5, 1);
    let mut t1 = Tracker::new();
    let (_, l1) = bfs::reachable_par(&mut t1, &short, 0);
    let mut t2 = Tracker::new();
    let (_, l2) = bfs::reachable_par(&mut t2, &long, 0);
    assert!(l2 >= 2 * l1 - 2, "levels {l1} → {l2}");
    assert!(
        t2.depth() as f64 >= 1.7 * t1.depth() as f64,
        "BFS depth must track the diameter: {} → {}",
        t1.depth(),
        t2.depth()
    );
}

#[test]
fn unit_flow_work_independent_of_graph_size() {
    use pmcf_expander::unit_flow::{parallel_unit_flow, UnitFlowProblem, UnitFlowState};
    let mut works = Vec::new();
    for &n in &[512usize, 4096] {
        let g = generators::random_regular_ugraph(n, 8, 1);
        let alive = vec![true; g.n()];
        let edge_ok = vec![true; g.m()];
        let p = UnitFlowProblem {
            g: &g,
            alive: &alive,
            edge_ok: &edge_ok,
            cap: 10.0,
            height: 40,
        };
        let mut s = UnitFlowState::new(g.n(), g.m());
        let mut t = Tracker::new();
        let out = parallel_unit_flow(&mut t, &p, &mut s, &[(0, 8.0)], 0.5, 50_000);
        assert!(out.remaining_excess < 1e-9);
        works.push(t.work());
    }
    // 8× the graph must not mean 8× the work (Lemma 3.11)
    assert!(
        works[1] < works[0] * 4,
        "unit flow work scaled with graph: {:?}",
        works
    );
}

#[test]
fn cost_model_parallel_composition_used_by_solver() {
    // a disabled tracker must cost nothing and the solver still works
    let p = generators::random_mcf(8, 24, 4, 3, 5);
    let mut t = Tracker::disabled();
    let sol = solve_mcf(&mut t, &p, &SolverConfig::default()).unwrap();
    assert!(sol.flow.is_feasible(&p));
    assert_eq!(t.work(), 0);
    assert_eq!(t.depth(), 0);
}
