//! Cross-crate end-to-end tests: both IPM engines against the exact
//! combinatorial oracle on batches of random instances.

use pmcf_baselines::ssp;
use pmcf_core::reference::PathFollowConfig;
use pmcf_core::{solve_mcf, Engine, SolverConfig};
use pmcf_graph::generators;
use pmcf_pram::Tracker;

#[test]
fn reference_engine_matches_ssp_on_many_instances() {
    for seed in 0..8 {
        let n = 8 + (seed as usize % 3) * 4;
        let m = 3 * n + seed as usize;
        let p = generators::random_mcf(n, m, 5, 4, seed);
        let want = ssp::min_cost_flow(&p).unwrap().cost(&p);
        let mut t = Tracker::new();
        let sol = solve_mcf(&mut t, &p, &SolverConfig::default()).unwrap();
        assert!(sol.flow.is_feasible(&p), "seed {seed}");
        assert_eq!(sol.cost, want, "seed {seed}");
    }
}

#[test]
fn robust_engine_matches_ssp_on_many_instances() {
    let cfg = SolverConfig {
        engine: Engine::Robust,
        path: PathFollowConfig::default(),
    };
    for seed in 20..26 {
        let p = generators::random_mcf(10, 40, 4, 3, seed);
        let want = ssp::min_cost_flow(&p).unwrap().cost(&p);
        let mut t = Tracker::new();
        let sol = solve_mcf(&mut t, &p, &cfg).unwrap();
        assert!(sol.flow.is_feasible(&p), "seed {seed}");
        assert_eq!(sol.cost, want, "seed {seed}");
    }
}

#[test]
fn engines_agree_with_each_other() {
    for seed in 40..44 {
        let p = generators::random_mcf(12, 48, 6, 5, seed);
        let mut t = Tracker::new();
        let a = solve_mcf(&mut t, &p, &SolverConfig::default()).unwrap();
        let cfg = SolverConfig {
            engine: Engine::Robust,
            path: PathFollowConfig::default(),
        };
        let b = solve_mcf(&mut t, &p, &cfg).unwrap();
        assert_eq!(a.cost, b.cost, "seed {seed}");
    }
}

#[test]
fn denser_instances_still_exact() {
    // m ≈ n^1.5 and beyond
    for &(n, m) in &[(16usize, 64usize), (16, 120), (25, 125)] {
        let p = generators::random_mcf(n, m, 6, 5, 77);
        let want = ssp::min_cost_flow(&p).unwrap().cost(&p);
        let mut t = Tracker::new();
        let sol = solve_mcf(&mut t, &p, &SolverConfig::default()).unwrap();
        assert_eq!(sol.cost, want, "n={n} m={m}");
    }
}

#[test]
fn negative_costs_and_circulations() {
    use pmcf_graph::{DiGraph, McfProblem};
    // circulation whose optimum saturates a negative cycle
    let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
    let p = McfProblem::circulation(g, vec![3, 3, 3, 3, 3], vec![1, 1, 1, -7, 2]);
    let want = ssp::min_cost_flow(&p).unwrap().cost(&p);
    let mut t = Tracker::new();
    let sol = solve_mcf(&mut t, &p, &SolverConfig::default()).unwrap();
    assert_eq!(sol.cost, want);
    assert!(sol.cost < 0, "profitable circulation exists");
}

#[test]
fn structured_hard_instances_solved_exactly() {
    use pmcf_graph::generators::{transportation_grid, zigzag_chain};
    for p in [transportation_grid(5, 3, 4, 1), zigzag_chain(8, 2)] {
        let want = ssp::min_cost_flow(&p).unwrap().cost(&p);
        let mut t = Tracker::new();
        let sol = solve_mcf(&mut t, &p, &SolverConfig::default()).unwrap();
        assert_eq!(sol.cost, want);
    }
}
